"""Tests for iso-cost contours: the geometric heart of all guarantees."""

import numpy as np
import pytest

from repro.common.errors import DiscoveryError
from repro.ess.contours import ContourSet, _contour_costs, _frontier_mask


class TestContourCosts:
    def test_doubling_ladder(self, toy_space):
        contours = ContourSet(toy_space)
        costs = contours.costs
        assert costs[0] == pytest.approx(toy_space.c_min)
        assert costs[-1] == pytest.approx(toy_space.c_max)
        for a, b in zip(costs[:-2], costs[1:-1]):
            assert b == pytest.approx(2 * a)

    def test_last_at_most_double(self, toy_space):
        costs = ContourSet(toy_space).costs
        assert costs[-1] <= 2 * costs[-2] * (1 + 1e-9)

    def test_custom_ratio(self, toy_space):
        contours = ContourSet(toy_space, ratio=3.0)
        costs = contours.costs
        for a, b in zip(costs[:-2], costs[1:-1]):
            assert b == pytest.approx(3 * a)

    def test_rejects_bad_ratio(self, toy_space):
        with pytest.raises(DiscoveryError):
            ContourSet(toy_space, ratio=1.0)

    def test_flat_surface_single_contour(self):
        assert _contour_costs(10.0, 10.0, 2.0) == [10.0]

    def test_count_formula(self):
        costs = _contour_costs(1.0, 100.0, 2.0)
        # ceil(log2(100)) = 7 doubling steps + capped final.
        assert len(costs) == 8
        assert costs[-1] == 100.0

    def test_no_duplicate_final_rung(self):
        """Regression: when c_max sits within float noise of the last
        geometric rung, the ladder used to emit a near-duplicate final
        contour (a zero-width doubling that wastes a full budget)."""
        c_max = 64.0 * (1 + 1e-10)
        costs = _contour_costs(1.0, c_max, 2.0)
        assert costs == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, c_max]
        for a, b in zip(costs, costs[1:]):
            assert b > a * 1.5

    def test_exact_power_ladder(self):
        costs = _contour_costs(1.0, 64.0, 2.0)
        assert costs == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]


class TestFrontierMask:
    def test_members_fit_budget(self, toy_space):
        contours = ContourSet(toy_space)
        for i in range(len(contours)):
            members = contours.members(i)
            costs = toy_space.opt_cost[tuple(members.coords.T)]
            assert np.all(costs <= contours.cost(i) * (1 + 1e-9))

    def test_members_are_frontier(self, toy_space):
        """Each member has a +1 neighbour exceeding the budget (or is
        the terminus)."""
        contours = ContourSet(toy_space)
        shape = toy_space.grid.shape
        for i in range(len(contours)):
            cc = contours.cost(i)
            for coord in contours.members(i).coords:
                coord = tuple(coord)
                if coord == toy_space.grid.terminus:
                    continue
                exceeds = False
                for d in range(len(shape)):
                    if coord[d] + 1 < shape[d]:
                        up = list(coord)
                        up[d] += 1
                        if toy_space.opt_cost[tuple(up)] > cc:
                            exceeds = True
                assert exceeds, coord

    def test_hypograph_dominated_by_contour(self, toy_space):
        """Every location under CC_i is dominated by some member --
        the property that makes budgeted contour execution complete."""
        contours = ContourSet(toy_space)
        for i in range(len(contours)):
            cc = contours.cost(i)
            members = contours.members(i).coords
            hypograph = np.argwhere(toy_space.opt_cost <= cc)
            for q in hypograph:
                assert np.any(np.all(members >= q, axis=1)), (i, q)

    def test_simple_synthetic_frontier(self):
        cost = np.array([
            [1.0, 2.0, 9.0],
            [2.0, 4.0, 9.5],
            [9.0, 9.5, 10.0],
        ])
        mask = _frontier_mask(cost, 4.0)
        assert mask[1, 1]           # 4 <= 4, both neighbours exceed
        assert mask[0, 1]           # right neighbour exceeds
        assert not mask[0, 0]       # interior to the hypograph
        assert not mask[2, 2]       # above the budget

    def test_terminus_included_when_whole_slice_fits(self):
        cost = np.array([[1.0, 2.0], [2.0, 3.0]])
        mask = _frontier_mask(cost, 10.0)
        assert mask[1, 1]
        assert mask.sum() == 1


class TestEffectiveContours:
    def test_fixed_dimension_pins_coordinate(self, toy_space):
        contours = ContourSet(toy_space)
        mid = len(contours) // 2
        members = contours.members(mid, fixed={0: 5})
        if not members.is_empty:
            assert np.all(members.coords[:, 0] == 5)
            assert members.free_dims == (1,)

    def test_effective_line_has_single_crossing(self, toy_space):
        contours = ContourSet(toy_space)
        for i in range(len(contours)):
            members = contours.members(i, fixed={0: 3})
            assert len(members) <= 1  # 1-D frontier: one point or none

    def test_all_fixed_point_inclusion(self, toy_space):
        contours = ContourSet(toy_space)
        index = (2, 3)
        i = contours.contour_of(index)
        members = contours.members(i, fixed={0: 2, 1: 3})
        assert len(members) == 1
        below = contours.members(0, fixed={0: 2, 1: 3})
        # Location is only on the all-fixed contour when it fits.
        if toy_space.optimal_cost(index) > contours.cost(0):
            assert below.is_empty

    def test_cache_returns_same_object(self, toy_space):
        contours = ContourSet(toy_space)
        a = contours.members(1)
        b = contours.members(1)
        assert a is b


class TestContourOf:
    def test_origin_on_first(self, toy_space):
        contours = ContourSet(toy_space)
        assert contours.contour_of(toy_space.grid.origin) == 0

    def test_terminus_on_last(self, toy_space):
        contours = ContourSet(toy_space)
        assert contours.contour_of(
            toy_space.grid.terminus) == len(contours) - 1

    def test_monotone_along_diagonal(self, toy_space):
        contours = ContourSet(toy_space)
        n = toy_space.grid.shape[0]
        levels = [contours.contour_of((i, i)) for i in range(n)]
        assert levels == sorted(levels)


class TestPlansOn:
    def test_plans_exist_on_every_contour(self, toy_space):
        contours = ContourSet(toy_space)
        for i in range(len(contours)):
            assert len(contours.plans_on(i)) >= 1

    def test_max_density_at_least_one(self, toy_space):
        assert ContourSet(toy_space).max_density() >= 1

    def test_requires_built_space(self, toy_query):
        from repro.ess.space import ExplorationSpace
        space = ExplorationSpace(toy_query, resolution=4, s_min=1e-5)
        with pytest.raises(DiscoveryError):
            ContourSet(space)
