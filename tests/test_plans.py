"""Tests for plan trees: structure, signatures, finalisation."""

import pytest

from repro.common.errors import PlanError
from repro.plans.nodes import (
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    finalize_plan,
    find_node,
    join_nodes_for_predicate,
)


def build_sample():
    return HashJoin(
        MergeJoin(
            SeqScan("a", ("f1",)),
            SeqScan("b"),
            ("j1",),
        ),
        SeqScan("c"),
        ("j2", "j3"),
    )


class TestStructure:
    def test_walk_is_postorder(self):
        plan = finalize_plan(build_sample())
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds == ["SeqScan", "SeqScan", "MergeJoin", "SeqScan",
                         "HashJoin"]

    def test_node_ids_postorder(self):
        plan = finalize_plan(build_sample())
        assert [n.node_id for n in plan.walk()] == [0, 1, 2, 3, 4]

    def test_tables_union(self):
        plan = build_sample()
        assert plan.tables == frozenset(("a", "b", "c"))
        assert plan.left.tables == frozenset(("a", "b"))

    def test_primary_predicate(self):
        plan = build_sample()
        assert plan.primary_predicate == "j2"
        assert plan.predicate_names == ("j2", "j3")

    def test_join_requires_predicate(self):
        with pytest.raises(PlanError):
            HashJoin(SeqScan("a"), SeqScan("b"), ())

    def test_is_leaf(self):
        plan = build_sample()
        assert not plan.is_leaf
        assert plan.right.is_leaf


class TestSignatures:
    def test_equal_structures_equal_signatures(self):
        assert build_sample().signature() == build_sample().signature()

    def test_different_join_kind_differs(self):
        a = HashJoin(SeqScan("a"), SeqScan("b"), ("j",))
        b = NestedLoopJoin(SeqScan("a"), SeqScan("b"), ("j",))
        assert a.signature() != b.signature()

    def test_child_order_matters(self):
        a = HashJoin(SeqScan("a"), SeqScan("b"), ("j",))
        b = HashJoin(SeqScan("b"), SeqScan("a"), ("j",))
        assert a.signature() != b.signature()

    def test_filters_in_signature(self):
        assert SeqScan("a", ("f",)).signature() != SeqScan("a").signature()

    def test_signatures_hashable(self):
        assert len({build_sample().signature(),
                    build_sample().signature()}) == 1


class TestFinalize:
    def test_finalize_copies(self):
        shared = SeqScan("a")
        plan1 = finalize_plan(HashJoin(shared, SeqScan("b"), ("j",)))
        plan2 = finalize_plan(HashJoin(shared, SeqScan("c"), ("k",)))
        # The shared scan was copied: ids do not clash across plans.
        assert plan1.left is not plan2.left

    def test_find_node(self):
        plan = finalize_plan(build_sample())
        assert find_node(plan, 2).kind == "MergeJoin"
        with pytest.raises(PlanError):
            find_node(plan, 99)

    def test_join_nodes_for_predicate(self):
        plan = finalize_plan(build_sample())
        assert len(join_nodes_for_predicate(plan, "j1")) == 1
        # j3 is residual (non-primary): not reported.
        assert join_nodes_for_predicate(plan, "j3") == []

    def test_display_contains_operators(self):
        text = finalize_plan(build_sample()).display()
        assert "HashJoin" in text
        assert "MergeJoin" in text
        assert "SeqScan(a | f1)" in text
