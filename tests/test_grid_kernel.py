"""Golden-grid equivalence: the vectorized kernel vs the scalar path.

The batch kernel's whole contract is **bit-identity** (DESIGN.md §13):
with the kernel on, every artifact -- plan diagram, optimal cost
surface, contour ladder, sweep grid, spill profiles -- must be
``==``-identical to what the legacy one-location-at-a-time path
produces. These tests pin that contract across dimensionalities, build
modes and seeds, plus the hot-path bugfixes that ride along (the
corner-seed cap and the incremental surface refresh).
"""

import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.cost.model import CostModel
from repro.engine.simulated import SimulatedEngine
from repro.ess.contours import ContourSet
from repro.ess.grid import SelectivityGrid
from repro.ess.space import (
    MAX_CORNER_SEEDS,
    ExplorationSpace,
    seed_indices,
)
from repro.ess.synthetic import textbook_space
from repro.harness.workloads import q15
from repro.optimizer.dp import Optimizer
from repro.session.cache import PlanBank
from repro.session.session import RobustSession
from repro.session.sweep import SweepDriver

# One query family across dims in {1, 2, 3}: TPC-DS Q15's chain with a
# growing epp subset. Resolutions keep exact builds test-sized.
DIMS_CASES = [
    (("cs_c",), 24),
    (("cs_c", "c_ca"), 6),
    (("cs_c", "c_ca", "cs_d"), 4),
]


def _build_pair(epps, resolution, mode, rng=0):
    query = q15(epps=epps)
    scalar = ExplorationSpace(query, resolution=resolution,
                              kernel=False).build(mode=mode, rng=rng)
    batched = ExplorationSpace(query, resolution=resolution,
                               kernel=True).build(mode=mode, rng=rng)
    return scalar, batched


def _assert_spaces_identical(scalar, batched):
    assert np.array_equal(scalar.plan_at, batched.plan_at)
    assert np.array_equal(scalar.opt_cost, batched.opt_cost)
    assert len(scalar.plans) == len(batched.plans)
    for a, b in zip(scalar.plans, batched.plans):
        assert a.tree.signature() == b.tree.signature()
        assert np.array_equal(a.cost, b.cost)
    assert ContourSet(scalar).costs == ContourSet(batched).costs


# ----------------------------------------------------------------------
# golden-grid equivalence suite


@pytest.mark.parametrize("epps,resolution", DIMS_CASES,
                         ids=["1D", "2D", "3D"])
@pytest.mark.parametrize("mode", ["fast", "exact"])
def test_kernel_matches_scalar_path(epps, resolution, mode):
    scalar, batched = _build_pair(epps, resolution, mode)
    _assert_spaces_identical(scalar, batched)


@pytest.mark.parametrize("seed", range(10))
def test_kernel_matches_scalar_across_seeds(seed):
    scalar, batched = _build_pair(("cs_c", "c_ca"), 5, "fast", rng=seed)
    _assert_spaces_identical(scalar, batched)


@pytest.mark.parametrize("algorithm", ["planbouquet", "spillbound",
                                       "alignedbound"])
def test_sweep_grids_identical(algorithm):
    grids = {}
    for kernel in (False, True):
        session = RobustSession(resolution=5, kernel=kernel)
        sweep = session.sweep(q15(epps=("cs_c", "c_ca")),
                              algorithm=algorithm)
        grids[kernel] = sweep.sub_optimalities
    assert np.array_equal(grids[False], grids[True])


def test_spill_profiles_identical():
    scalar, batched = _build_pair(("cs_c", "c_ca", "cs_d"), 4, "exact")
    qa = (2, 1, 3)
    checked = 0
    for info_s, info_b in zip(scalar.plans, batched.plans):
        engine_s = SimulatedEngine(scalar, qa)
        engine_b = SimulatedEngine(batched, qa)
        for epp, node_s, _sub in info_s.spill_order:
            node_b = next(n for e, n, _ in info_b.spill_order if e == epp)
            prof_s = engine_s._subtree_profile(info_s, epp, node_s)
            prof_b = engine_b._subtree_profile(info_b, epp, node_b)
            assert np.array_equal(prof_s, prof_b)
            checked += 1
    assert checked > 0


def test_synthetic_spill_profile_matches_cost_model():
    space = textbook_space(resolution=12)
    qa = (7, 3)
    info = space.plans[1]
    epp, node, _sub = info.spill_order[0]
    dim = space.query.epp_index(epp)
    truth = space.assignment_at(qa)
    truth[epp] = space.grid.values[dim]
    legacy = np.asarray(space.cost_model.subtree_cost(node, truth),
                        dtype=float)
    fast = space.spill_profile(info, epp, node, qa)
    assert np.array_equal(legacy, fast)


# ----------------------------------------------------------------------
# batch DP equivalence


def _random_assignments(query, size, seed=0):
    rng = np.random.default_rng(seed)
    return {
        name: 10.0 ** rng.uniform(-6, 0, size=size)
        for name in query.epps
    }


def test_batch_dp_matches_scalar_unconstrained():
    query = q15(epps=("cs_c", "c_ca", "cs_d"))
    optimizer = Optimizer(query, CostModel(query))
    assignments = _random_assignments(query, 16)
    batch = optimizer.optimize_batch(assignments)
    for pos in range(16):
        point = {name: float(values[pos])
                 for name, values in assignments.items()}
        scalar = optimizer.optimize(point)
        assert batch.cost_at(pos) == scalar.cost
        assert batch.signature_at(pos) == scalar.plan.signature()


def test_batch_dp_matches_scalar_constrained():
    query = q15(epps=("cs_c", "c_ca", "cs_d"))
    optimizer = Optimizer(query, CostModel(query))
    assignments = _random_assignments(query, 8, seed=3)
    for epp in query.epps:
        batch = optimizer.optimize_batch(assignments, spilling_on=epp)
        for pos in range(8):
            point = {name: float(values[pos])
                     for name, values in assignments.items()}
            scalar = optimizer.optimize_spilling_on(epp, point)
            if batch is None:
                assert scalar is None
                continue
            assert batch.cost_at(pos) == scalar.cost
            assert batch.signature_at(pos) == scalar.plan.signature()


# ----------------------------------------------------------------------
# satellite: corner-seed cap (was: 2**D corners for any D)


def test_seed_indices_caps_corner_enumeration():
    grid = SelectivityGrid(12, 2)
    seeds = seed_indices(grid, 5, make_rng(0))
    # 64 capped corners + centre + 5 random picks, not 2**12 corners.
    assert len(seeds) == MAX_CORNER_SEEDS + 1 + 5
    corners = seeds[:MAX_CORNER_SEEDS]
    assert len(set(corners)) == MAX_CORNER_SEEDS
    for corner in corners:
        assert all(i in (0, grid.shape[d] - 1)
                   for d, i in enumerate(corner))


def test_seed_indices_unchanged_at_low_dims():
    grid = SelectivityGrid(3, 4)
    seeds = seed_indices(grid, 7, make_rng(1))
    assert len(seeds) == 2 ** 3 + 1 + 7
    # The rng draw sequence is independent of the cap.
    replay = seed_indices(grid, 7, make_rng(1), corners=False)
    assert seeds[-7:] == replay


def test_high_dimension_seeding_regression():
    # The uncapped enumeration at D=16 would walk 65536 corners before
    # drawing a single random pick; the cap keeps seeding linear.
    seeds = seed_indices(SelectivityGrid(16, 2), 10, make_rng(0))
    assert len(seeds) == MAX_CORNER_SEEDS + 1 + 10


# ----------------------------------------------------------------------
# satellite: incremental surface refresh


def test_incremental_refresh_matches_full_stack():
    query = q15(epps=("cs_c", "c_ca"))
    space = ExplorationSpace(query, resolution=6).build(mode="fast")
    stack = np.stack([info.cost for info in space.plans])
    assert np.array_equal(space.plan_at,
                          np.argmin(stack, axis=0).astype(np.int32))
    assert np.array_equal(space.opt_cost, np.min(stack, axis=0))


def test_incremental_refresh_one_plan_at_a_time():
    query = q15(epps=("cs_c", "c_ca"))
    donor = ExplorationSpace(query, resolution=5).build(mode="exact")
    space = ExplorationSpace(query, resolution=5)
    for info in donor.plans:
        space.register_plan(info.tree)
        space._refresh_surface()
        count = len(space.plans)
        stack = np.stack([p.cost for p in space.plans])
        assert np.array_equal(
            space.plan_at, np.argmin(stack, axis=0).astype(np.int32))
        assert np.array_equal(space.opt_cost, np.min(stack, axis=0))
        assert space._surface_count == count


# ----------------------------------------------------------------------
# contour slice sharing across ladders


def test_contour_rebuild_reuses_coincident_rungs():
    query = q15(epps=("cs_c", "c_ca"))
    space = ExplorationSpace(query, resolution=6).build(mode="fast")
    doubling = ContourSet(space, ratio=2.0)
    for i in range(len(doubling)):
        doubling.members(i)
    rebuilt = doubling.rebuild(ratio=4.0)
    assert rebuilt.costs[0] == doubling.costs[0]
    assert rebuilt.costs[-1] == doubling.costs[-1]
    # Coincident rungs are served from the space-shared slice cache --
    # the very same ContourSlice objects, not recomputations.
    assert rebuilt.members(0) is doubling.members(0)
    assert rebuilt.members(len(rebuilt) - 1) is \
        doubling.members(len(doubling) - 1)


def test_contour_members_unchanged_by_sharing():
    scalar, batched = _build_pair(("cs_c", "c_ca"), 6, "fast")
    cs_s = ContourSet(scalar)
    cs_b = ContourSet(batched)
    assert cs_s.costs == cs_b.costs
    for i in range(len(cs_s)):
        a, b = cs_s.members(i), cs_b.members(i)
        assert np.array_equal(a.coords, b.coords)
        assert np.array_equal(a.plan_ids, b.plan_ids)


# ----------------------------------------------------------------------
# cross-build reuse (plan bank, DP memo, driver artifact memo)


def test_plan_bank_shares_surfaces_across_builds():
    query = q15(epps=("cs_c", "c_ca"))
    bank = PlanBank().scope(query)
    first = ExplorationSpace(query, resolution=5)
    first.bank = bank
    first.build(mode="fast")
    misses = bank.stats.surface_misses
    assert misses >= len(first.plans)
    second = ExplorationSpace(query, resolution=5)
    second.bank = bank
    second.build(mode="fast")
    assert bank.stats.surface_hits >= len(second.plans)
    _assert_spaces_identical(first, second)


def test_dp_memo_shared_across_algorithm_instances():
    query = q15(epps=("cs_c", "c_ca"))
    space = ExplorationSpace(query, resolution=5).build(mode="fast")
    index = (2, 3)
    first = space.optimize_at(index)
    assert space.optimize_at(index) is first
    constrained = space.optimize_at(index, spilling_on="cs_c")
    assert space.optimize_at(index, spilling_on="cs_c") is constrained


def test_sweep_driver_memoizes_artifacts_and_reports_reuse():
    session = RobustSession(resolution=5)
    driver = SweepDriver(session, sample=4)
    query = q15(epps=("cs_c", "c_ca"))
    space_a, contours_a = driver.artifacts(query)
    space_b, contours_b = driver.artifacts(query)
    assert space_a is space_b and contours_a is contours_b
    list(driver.run([query], algorithms=("spillbound",)))
    summary = driver.reuse_summary()
    assert summary["space_builds"] == 1
    for key in ("surface_hits", "surface_misses",
                "dp_result_hits", "dp_result_misses"):
        assert key in summary


def test_session_reuses_dp_results_across_resolutions():
    session = RobustSession(kernel=True)
    query = q15(epps=("cs_c", "c_ca"))
    coarse = session.space(query, resolution=5)
    for corner in (coarse.grid.origin, coarse.grid.terminus):
        coarse.optimize_at(corner)
    hits_before = session.cache.bank.stats.plan_hits
    # Grid endpoints are pinned, so corner assignments coincide bitwise
    # across resolutions and their DP calls are served from the bank.
    fine = session.space(query, resolution=7)
    for corner in (fine.grid.origin, fine.grid.terminus):
        fine.optimize_at(corner)
    assert session.cache.bank.stats.plan_hits >= hits_before + 2
