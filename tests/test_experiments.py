"""Smoke/integration tests for the experiment drivers (tiny configs)."""

import pytest

from repro.harness import experiments as exp

SMALL = ("2D_Q91", "3D_Q15")


class TestFigureDrivers:
    def test_fig8(self):
        report = exp.fig8_mso_guarantees(names=SMALL, resolution=8)
        text = report.render()
        assert "2D_Q91" in text and "3D_Q15" in text
        rows = report.tables[0][2]
        for _name, d, _rho, _pb, sb in rows:
            assert sb == pytest.approx(d * d + 3 * d)

    def test_fig9(self):
        report = exp.fig9_dimensionality(resolution=5)
        rows = report.tables[0][2]
        assert [r[0] for r in rows] == [2, 3, 4, 5, 6]
        assert [r[2] for r in rows] == [10, 18, 28, 40, 54]

    def test_fig10_11(self):
        report = exp.fig10_11_empirical(
            names=("2D_Q91",), resolution=8)
        rows = report.tables[0][2]
        name, pb_mso, sb_mso, pb_aso, sb_aso = rows[0]
        assert pb_mso >= pb_aso >= 1.0
        assert sb_mso >= sb_aso >= 1.0
        assert sb_mso <= 10 + 1e-6

    def test_fig12(self):
        report = exp.fig12_distribution("2D_Q91", resolution=8)
        rows = report.tables[0][2]
        assert sum(r[1] for r in rows) == pytest.approx(100.0)
        assert sum(r[2] for r in rows) == pytest.approx(100.0)

    def test_fig13(self):
        report = exp.fig13_ab_mso(names=("2D_Q91",), resolution=8)
        _name, sb_mso, ab_mso, lower = report.tables[0][2][0]
        assert lower == pytest.approx(6.0)
        assert ab_mso <= 10 + 1e-6


class TestTableDrivers:
    def test_table2(self):
        report = exp.table2_alignment(names=("2D_Q91",), resolution=8)
        row = report.tables[0][2][0]
        percents = row[1:5]
        assert all(0 <= p <= 100 for p in percents)
        assert list(percents) == sorted(percents)

    def test_table3(self):
        report = exp.table3_trace("2D_Q91", resolution=8)
        text = report.render()
        assert "plan" in text
        assert "sub-optimality" in text

    def test_table4(self):
        report = exp.table4_ab_penalty(
            names=("2D_Q91",), resolution=8, sweep_sample=16)
        _name, penalty = report.tables[0][2][0]
        assert penalty >= 0.0


class TestOtherDrivers:
    def test_wallclock(self):
        report = exp.wallclock_experiment(
            scale=0.25, resolution=8, rng=2)
        rows = {name: subopt for name, _cost, subopt, _n
                in report.tables[0][2]}
        assert rows["oracle"] == "1.00"
        assert float(rows["spillbound"]) >= 1.0

    def test_job(self):
        report = exp.job_experiment(dims=3, resolution=6)
        rows = dict((r[0], r[1]) for r in report.tables[0][2])
        assert rows["spillbound (empirical)"] <= 18 + 1e-6
        assert rows["native (worst-case over qe)"] >= 1.0

    def test_ablation_cost_ratio(self):
        report = exp.ablation_cost_ratio(
            "2D_Q91", ratios=(1.8, 2.0), resolution=8)
        rows = report.tables[0][2]
        for ratio, _m, msog, msoe, _aso in rows:
            assert msoe <= msog + 1e-6

    def test_ablation_anorexic(self):
        report = exp.ablation_anorexic(
            "2D_Q91", lambdas=(0.0, 0.2), resolution=8)
        rows = report.tables[0][2]
        # rho shrinks (weakly) as lambda grows.
        assert rows[0][1] >= rows[1][1]
