"""Tests for synthetic exploration spaces and the Omega(D) adversary."""

import numpy as np
import pytest

from repro.algorithms.alignedbound import AlignedBound
from repro.algorithms.planbouquet import PlanBouquet
from repro.algorithms.spillbound import SpillBound
from repro.common.errors import DiscoveryError
from repro.ess.contours import ContourSet
from repro.ess.synthetic import (
    SyntheticPlan,
    SyntheticSpace,
    spike_space,
    textbook_space,
)
from repro.metrics.mso import exhaustive_sweep


class TestConstruction:
    def test_pcm_validation_rejects_flat_plans(self):
        flat = SyntheticPlan("flat", lambda x, y: 0 * x + 0 * y + 5.0)
        with pytest.raises(DiscoveryError, match="PCM"):
            SyntheticSpace(2, [flat], resolution=6)

    def test_rejects_bad_spill_fraction(self):
        with pytest.raises(DiscoveryError):
            SyntheticPlan("p", lambda x: x, spill_fraction=0.0)

    def test_surface_is_lower_envelope(self):
        space = textbook_space(resolution=12)
        stack = np.stack([info.cost for info in space.plans])
        assert np.allclose(space.opt_cost, stack.min(axis=0))

    def test_query_shim(self):
        space = spike_space(3, resolution=6)
        assert space.query.dimensions == 3
        assert space.query.epp_index("e2") == 1
        with pytest.raises(DiscoveryError):
            space.query.epp_index("bogus")

    def test_constrained_probe_declines(self):
        space = textbook_space(resolution=8)
        assert space.optimize_at((0, 0), spilling_on="e1") is None


class TestTextbookSpace:
    def test_multiple_plans_per_contour(self):
        space = textbook_space(resolution=24)
        contours = ContourSet(space)
        assert contours.max_density() >= 2

    def test_all_algorithms_within_bounds(self):
        space = textbook_space(resolution=12)
        contours = ContourSet(space)
        for cls in (PlanBouquet, SpillBound, AlignedBound):
            algorithm = cls(space, contours)
            sweep = exhaustive_sweep(algorithm)
            assert sweep.mso <= algorithm.mso_guarantee() + 1e-6

    def test_spill_learning_exact(self):
        space = textbook_space(resolution=16)
        sb = SpillBound(space, ContourSet(space))
        qa = (10, 12)
        result = sb.run(qa)
        for record in result.executions:
            if record.mode == "spill" and record.completed:
                dim = space.query.epp_index(record.epp)
                assert record.learned == qa[dim]


class TestSpikeAdversary:
    def test_omega_d_behaviour(self):
        """The Theorem 4.6 flavour: the adversarial family forces an
        MSO of at least D (per-dimension probing is unavoidable), and
        the incurred MSO grows strictly with dimensionality while
        remaining inside the quadratic guarantee."""
        msos = []
        for dims in (2, 3, 4):
            space = spike_space(dims, resolution=7)
            sb = SpillBound(space, ContourSet(space))
            sweep = exhaustive_sweep(sb)
            assert sweep.mso >= dims
            assert sweep.mso <= sb.mso_guarantee() + 1e-6
            msos.append(sweep.mso)
        assert msos[0] < msos[1] < msos[2]

    def test_each_plan_probes_one_dimension(self):
        space = spike_space(3, resolution=6)
        for info in space.plans:
            spillable = {name for name, _n, _s in info.spill_order}
            assert len(spillable) == 1
