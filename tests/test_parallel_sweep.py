"""Parallel sweep backend: bit-identical merge, seed splitting, limits.

The contract under test (DESIGN.md §9): a ``SweepDriver`` with
``workers=N`` must produce grids, ``SweepResult.extras`` (degradation
tallies and obs counters) and write-ahead journal records **equal** to
the serial driver's -- parallelism is an execution detail, never a
semantic one. Everything that cannot honour that contract across
process boundaries (engine closures, prebuilt algorithm instances,
in-flight checkpoint reuse, database-backed engines) must be refused
with a clear error, not silently degraded.
"""

import os

import numpy as np
import pytest

from repro.common.errors import DiscoveryError
from repro.engine.latency import LatencyEngine
from repro.engine.simulated import SimulatedEngine
from repro.robustness.durable import CircuitBreaker
from repro.session import (
    EngineSpec,
    RobustSession,
    SweepDriver,
    unit_fault_seed,
)

QUERY = "2D_Q91"
ALGOS = ("spillbound", "planbouquet")
FAULTY = "simulated+faulty(crash=0.2,transient=0.1)"


def _session(**kwargs):
    return RobustSession(resolution=6, **kwargs)


def _records(driver, queries=(QUERY,), algorithms=ALGOS):
    return list(driver.run(list(queries), list(algorithms)))


def _assert_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert (a.query_name, a.algorithm) == (b.query_name, b.algorithm)
        assert np.array_equal(a.sweep.sub_optimalities,
                              b.sweep.sub_optimalities), a.algorithm
        assert a.sweep.shape == b.sweep.shape
        assert a.sweep.extras == b.sweep.extras, a.algorithm
        assert a.sweep.sample_flats == b.sweep.sample_flats
        assert a.sweep.grid_shape == b.sweep.grid_shape


def _wal_bytes(journal_dir):
    chunks = []
    for name in sorted(os.listdir(journal_dir)):
        if name.endswith(".wal"):
            with open(os.path.join(journal_dir, name), "rb") as handle:
                chunks.append((name, handle.read()))
    return chunks


class TestEquivalence:
    def test_plain_sweep_is_bit_identical(self):
        serial = _records(SweepDriver(_session()))
        parallel = _records(SweepDriver(_session(), workers=4))
        _assert_identical(serial, parallel)

    def test_faulty_guarded_sweep_is_bit_identical(self):
        def driver(workers):
            return SweepDriver(_session(guard=True), workers=workers,
                               engine_spec=FAULTY, fault_seed=42)

        serial = _records(driver(None))
        parallel = _records(driver(4))
        _assert_identical(serial, parallel)
        # The fault stream really degraded runs, so the equality above
        # covered the degradation tallies, not just clean grids.
        assert any(r.sweep.extras["degraded"] > 0 for r in serial)

    def test_sampled_sweep_is_bit_identical(self):
        def driver(workers):
            return SweepDriver(_session(), sample=20, rng=7,
                               workers=workers)

        _assert_identical(_records(driver(None)), _records(driver(4)))

    def test_chunk_size_does_not_change_results(self):
        serial = _records(SweepDriver(_session()))
        one_at_a_time = _records(SweepDriver(_session(), workers=2,
                                             chunk_size=1))
        _assert_identical(serial, one_at_a_time)

    def test_journal_bytes_are_identical(self, tmp_path):
        def run(workers, journal):
            driver = SweepDriver(_session(guard=True), workers=workers,
                                 engine_spec=FAULTY, fault_seed=9,
                                 sample=16, rng=3,
                                 journal=str(journal))
            _records(driver)
            return _wal_bytes(str(journal))

        assert run(None, tmp_path / "serial") \
            == run(4, tmp_path / "parallel")

    def test_obs_extras_are_identical_with_tracing(self, tmp_path):
        def run(workers, trace_dir):
            driver = SweepDriver(_session(), workers=workers,
                                 trace_dir=str(trace_dir))
            records = _records(driver, algorithms=("spillbound",))
            return records, driver.obs_summary()

        serial, serial_obs = run(None, tmp_path / "s")
        parallel, parallel_obs = run(3, tmp_path / "p")
        _assert_identical(serial, parallel)
        assert serial_obs == parallel_obs
        assert serial_obs, "tracing should populate obs counters"
        # Workers' per-chunk traces were folded into one per-unit file
        # named exactly like the serial sweep's.
        assert sorted(os.listdir(tmp_path / "p")) \
            == sorted(os.listdir(tmp_path / "s"))


class TestFaultSeedSplit:
    def test_split_is_stable_and_per_unit(self):
        a = unit_fault_seed(42, "2D_Q91/spillbound")
        assert a == unit_fault_seed(42, "2D_Q91/spillbound")
        assert a != unit_fault_seed(42, "2D_Q91/planbouquet")
        assert a != unit_fault_seed(43, "2D_Q91/spillbound")
        assert 0 <= a < 2 ** 31

    def test_serial_split_matches_single_unit_runs(self):
        """Each unit's grid depends only on its own split seed: a sweep
        of two algorithms equals two single-algorithm sweeps."""
        both = _records(SweepDriver(_session(guard=True),
                                    engine_spec=FAULTY, fault_seed=5))
        for record in both:
            alone = _records(
                SweepDriver(_session(guard=True), engine_spec=FAULTY,
                            fault_seed=5),
                algorithms=(record.algorithm.replace("guarded-", ""),))
            assert np.array_equal(record.sweep.sub_optimalities,
                                  alone[0].sweep.sub_optimalities)


class TestRestrictions:
    def test_engine_factory_closure_is_refused(self):
        driver = SweepDriver(
            _session(), workers=2,
            engine_factory=lambda qa: SimulatedEngine(None, qa))
        with pytest.raises(DiscoveryError, match="engine_factory"):
            _records(driver)

    def test_prebuilt_instances_are_refused(self):
        session = _session()
        instance = session.algorithm("spillbound", query=QUERY)
        driver = SweepDriver(session, workers=2)
        with pytest.raises(DiscoveryError, match="instances"):
            _records(driver, algorithms=(instance,))

    def test_reuse_inflight_is_refused(self, tmp_path):
        driver = SweepDriver(_session(), workers=2,
                             journal=str(tmp_path / "j"),
                             reuse_inflight=True)
        with pytest.raises(DiscoveryError, match="reuse_inflight"):
            _records(driver)

    def test_spec_and_factory_are_mutually_exclusive(self):
        with pytest.raises(DiscoveryError, match="not both"):
            SweepDriver(_session(), engine_spec="simulated",
                        engine_factory=lambda qa: None)


class TestResume:
    def test_parallel_resumes_serial_journal(self, tmp_path):
        journal = str(tmp_path / "j")
        first = _records(SweepDriver(_session(), journal=journal),
                         algorithms=("spillbound",))
        resumed = _records(
            SweepDriver(_session(), journal=journal, resume=True,
                        workers=4))
        assert resumed[0].replayed and not resumed[1].replayed
        assert np.array_equal(first[0].sweep.sub_optimalities,
                              resumed[0].sweep.sub_optimalities)

    def test_serial_resumes_parallel_journal(self, tmp_path):
        journal = str(tmp_path / "j")
        first = _records(SweepDriver(_session(), workers=4,
                                     journal=journal),
                         algorithms=("spillbound",))
        resumed = _records(
            SweepDriver(_session(), journal=journal, resume=True))
        assert resumed[0].replayed
        assert np.array_equal(first[0].sweep.sub_optimalities,
                              resumed[0].sweep.sub_optimalities)
        # The replayed + fresh stream matches an uninterrupted serial
        # sweep of the full algorithm list.
        uninterrupted = _records(SweepDriver(_session()))
        _assert_identical(uninterrupted, resumed)


class TestBreakers:
    # The breaker is live protection, not part of the deterministic
    # result (DESIGN.md §9): each worker trips its own copy, and which
    # runs an open breaker preempts depends on chunk scheduling. These
    # tests therefore use crash=1.0, where every location must degrade
    # in both modes whatever the breaker state -- the one regime where
    # grids and tallies are equal *by construction* rather than by a
    # lucky seed.

    def test_worker_breaker_accounting_folds_into_parent(self):
        breaker = CircuitBreaker(threshold=2)
        driver = SweepDriver(_session(guard=True), workers=3,
                             engine_spec="simulated+faulty(crash=1.0)",
                             fault_seed=1, breaker=breaker)
        records = _records(driver, algorithms=("spillbound",))
        extras = records[0].sweep.extras
        assert extras["degraded"] > 0
        # Workers tripped their own breakers; the parent's copy saw no
        # crash directly but absorbed the reporting counters.
        assert breaker.opened > 0
        assert breaker.state == CircuitBreaker.CLOSED

    def test_fully_degraded_grids_match_serial_under_breaker(self):
        def run(workers):
            driver = SweepDriver(
                _session(guard=True), workers=workers,
                engine_spec="simulated+faulty(crash=1.0)", fault_seed=1,
                breaker=CircuitBreaker(threshold=2))
            return _records(driver, algorithms=("spillbound",))

        serial, parallel = run(None), run(3)
        # A degraded cell is the native fallback's sub-optimality --
        # independent of whether it degraded via breaker-open or
        # retries-exhausted -- so with everything degraded the grids
        # agree exactly. (The per-reason split still may not.)
        assert serial[0].sweep.extras["degraded"] \
            == serial[0].sweep.sub_optimalities.size
        assert serial[0].sweep.extras["degraded"] \
            == parallel[0].sweep.extras["degraded"]
        assert np.array_equal(serial[0].sweep.sub_optimalities,
                              parallel[0].sweep.sub_optimalities)


class TestLatencyLayer:
    def test_latency_layer_parses_and_builds(self):
        spec = EngineSpec.parse("simulated+latency(ms=5)")
        assert spec.describe() == "simulated+latency(ms=5)"
        session = _session()
        space = session.space(QUERY)
        engine = spec.build(space, qa_index=(1, 1))
        assert isinstance(engine, LatencyEngine)
        assert engine.ms == 5.0
        assert isinstance(engine.engine, SimulatedEngine)

    def test_latency_preserves_results(self):
        session = _session()
        space = session.space(QUERY)
        qa = (2, 3)
        plain = SimulatedEngine(space, qa)
        delayed = LatencyEngine(SimulatedEngine(space, qa), ms=0.0)
        plan = space.optimal_plan(qa)
        a = plain.execute(plan, budget=float("inf"))
        b = delayed.execute(plan, budget=float("inf"))
        assert a.spent == b.spent and a.completed == b.completed

    def test_sound_fallback_skips_latency(self):
        session = _session()
        space = session.space(QUERY)
        engine = LatencyEngine(SimulatedEngine(space, (1, 1)), ms=50.0)
        assert isinstance(engine.sound(), SimulatedEngine)

    def test_unknown_latency_argument_is_refused(self):
        with pytest.raises(DiscoveryError, match="latency"):
            EngineSpec.parse("simulated+latency(bogus=1)").build(
                _session().space(QUERY), qa_index=(0, 0))


class TestRowBackedParallel:
    """Row-backed engine specs across process boundaries: workers
    regenerate the row store from the session's declarative
    DatabaseSpec (raw arrays are refused)."""

    @staticmethod
    def _driver(workers):
        from repro.catalog.datagen import DatabaseSpec

        session = RobustSession(
            resolution=6,
            database=DatabaseSpec(rng=11, max_rows=800))
        return SweepDriver(session, sample=4, rng=2, workers=workers,
                           engine_spec="row(backend=sqlite,delta=1)")

    def test_sqlite_spec_sweep_is_bit_identical(self):
        serial = _records(self._driver(None),
                          algorithms=("spillbound",))
        parallel = _records(self._driver(2),
                            algorithms=("spillbound",))
        _assert_identical(serial, parallel)

    def test_raw_arrays_are_refused_with_workers(self):
        session = RobustSession(resolution=6)
        session.database = {"store_sales": {}}  # raw, unpicklable intent
        driver = SweepDriver(session, workers=2, engine_spec="row()")
        with pytest.raises(DiscoveryError, match="DatabaseSpec"):
            _records(driver, algorithms=("spillbound",))
