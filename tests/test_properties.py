"""Cross-cutting property tests on randomly generated instances.

These complement the per-module unit tests with invariants that must
hold for *any* catalog/query the generator produces: contour geometry,
spill-profile monotonicity, anorexic-reduction contracts, and the
engine's learning soundness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.spillbound import SpillBound
from repro.engine.simulated import SimulatedEngine
from repro.ess.anorexic import anorexic_reduction
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.harness.generator import SHAPES, random_query

_SPACE_CACHE = {}


def small_space(seed, dims, shape):
    """Exactly-built small space for a generated query (memoised)."""
    key = (seed, dims, shape)
    if key not in _SPACE_CACHE:
        query = random_query(seed, dims=dims, shape=shape)
        resolution = 8 if dims == 2 else 5
        space = ExplorationSpace(query, resolution=resolution,
                                 s_min=1e-5)
        _SPACE_CACHE[key] = space.build(mode="exact")
    return _SPACE_CACHE[key]


@given(
    seed=st.integers(0, 40),
    dims=st.integers(2, 3),
    shape=st.sampled_from(SHAPES),
)
@settings(max_examples=15, deadline=None)
def test_contour_frontier_invariants(seed, dims, shape):
    """Members fit their budget; the hypograph is dominated."""
    space = small_space(seed, dims, shape)
    contours = ContourSet(space)
    for i in range(len(contours)):
        members = contours.members(i)
        costs = space.opt_cost[tuple(members.coords.T)]
        assert np.all(costs <= contours.cost(i) * (1 + 1e-9))
    # Hypograph domination for a mid-ladder contour.
    mid = len(contours) // 2
    cc = contours.cost(mid)
    members = contours.members(mid).coords
    hypograph = np.argwhere(space.opt_cost <= cc)
    for q in hypograph:
        assert np.any(np.all(members >= q, axis=1))


@given(
    seed=st.integers(0, 40),
    dims=st.integers(2, 3),
    shape=st.sampled_from(SHAPES),
)
@settings(max_examples=15, deadline=None)
def test_spill_profiles_monotone(seed, dims, shape):
    """Every plan's spill subtree cost is non-decreasing in its epp."""
    space = small_space(seed, dims, shape)
    engine = SimulatedEngine(space, space.grid.origin)
    for info in space.plans[:6]:
        target = info.spill_target(set(space.query.epps))
        if target is None:
            continue
        epp, node = target
        profile = engine._subtree_profile(info, epp, node)
        assert np.all(np.diff(profile) >= -1e-9)


@given(
    seed=st.integers(0, 40),
    lam=st.floats(0.0, 2.0),
)
@settings(max_examples=15, deadline=None)
def test_anorexic_contract(seed, lam):
    """Reduced assignments stay within (1+lam) of optimal everywhere."""
    space = small_space(seed, 2, "star")
    reduced = anorexic_reduction(space, lam)
    for flat in range(0, space.grid.size, 7):
        index = space.grid.unflat(flat)
        plan_id = int(reduced.plan_at[index])
        cost = space.plans[plan_id].cost[index]
        assert cost <= (1 + lam) * space.optimal_cost(index) * (1 + 1e-9)


@given(
    seed=st.integers(0, 40),
    qa_seed=st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_engine_learning_sound(seed, qa_seed):
    """Learnt lower bounds never overshoot the hidden truth."""
    space = small_space(seed, 2, "chain")
    rng = np.random.default_rng(qa_seed)
    qa = tuple(int(rng.integers(0, s)) for s in space.grid.shape)
    engine = SimulatedEngine(space, qa)
    contours = ContourSet(space)
    sb = SpillBound(space, contours)
    result = sb.run(qa, engine=engine)
    for record in result.executions:
        if record.mode != "spill" or record.learned is None:
            continue
        dim = space.query.epp_index(record.epp)
        if record.completed:
            assert record.learned == qa[dim]
        else:
            assert record.learned < qa[dim]


@given(
    seed=st.integers(0, 40),
    dims=st.integers(2, 3),
    shape=st.sampled_from(SHAPES),
)
@settings(max_examples=10, deadline=None)
def test_discovery_cost_dominates_oracle(seed, dims, shape):
    """Sub-optimality is >= 1 at every probed location (the discovery
    sequence includes a completing execution priced at true cost)."""
    space = small_space(seed, dims, shape)
    sb = SpillBound(space, ContourSet(space))
    for corner in (space.grid.origin, space.grid.terminus):
        assert sb.run(corner).sub_optimality >= 1.0 - 1e-9
