"""Tests for the SPJ SQL parser."""

import pytest

from repro.catalog.tpcds import tpcds_catalog
from repro.common.errors import QueryError
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def catalog():
    return tpcds_catalog()


BASIC = """
SELECT * FROM catalog_sales cs, date_dim d, customer c
WHERE cs.cs_sold_date_sk = d.d_date_sk
  AND cs.cs_bill_customer_sk = c.c_customer_sk
  AND d.d_year = 2000
"""


class TestBasics:
    def test_tables_resolved(self, catalog):
        query = parse_query(BASIC, catalog)
        assert set(query.tables) == {"catalog_sales", "date_dim",
                                     "customer"}

    def test_joins_named_by_alias_pair(self, catalog):
        query = parse_query(BASIC, catalog)
        assert {j.name for j in query.joins} == {"cs_d", "cs_c"}

    def test_join_sides_qualified(self, catalog):
        query = parse_query(BASIC, catalog)
        join = query.predicate("cs_d")
        assert join.left == "catalog_sales.cs_sold_date_sk"
        assert join.right == "date_dim.d_date_sk"

    def test_filters_parsed(self, catalog):
        query = parse_query(BASIC, catalog)
        filt = query.predicate("f_d_year")
        assert filt.op == "="
        assert filt.constant == 2000

    def test_all_joins_epps_by_default(self, catalog):
        query = parse_query(BASIC, catalog)
        assert query.dimensions == 2

    def test_explicit_epps(self, catalog):
        query = parse_query(BASIC, catalog, epps=("cs_d",))
        assert query.epps == ("cs_d",)

    def test_no_epps(self, catalog):
        query = parse_query(BASIC, catalog, epps="none")
        assert query.dimensions == 0

    def test_trailing_semicolon(self, catalog):
        query = parse_query(BASIC.strip() + ";", catalog)
        assert len(query.joins) == 2


class TestJoinSyntax:
    def test_inner_join_on(self, catalog):
        sql = """
        SELECT * FROM catalog_sales cs
        JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk
        WHERE d.d_moy <= 6
        """
        query = parse_query(sql, catalog)
        assert {j.name for j in query.joins} == {"cs_d"}
        assert query.predicate("f_d_moy").op == "<="

    def test_as_alias(self, catalog):
        sql = ("SELECT * FROM date_dim AS dd, catalog_sales AS s "
               "WHERE s.cs_sold_date_sk = dd.d_date_sk")
        query = parse_query(sql, catalog)
        assert "date_dim" in query.tables

    def test_no_alias(self, catalog):
        sql = ("SELECT * FROM date_dim, catalog_sales WHERE "
               "catalog_sales.cs_sold_date_sk = date_dim.d_date_sk")
        query = parse_query(sql, catalog)
        assert len(query.joins) == 1


class TestFilters:
    def test_reversed_constant_side(self, catalog):
        sql = ("SELECT * FROM date_dim d, catalog_sales s "
               "WHERE s.cs_sold_date_sk = d.d_date_sk AND 6 >= d.d_moy")
        query = parse_query(sql, catalog)
        filt = next(iter(query.filters))
        assert filt.op == "<="
        assert filt.constant == 6

    def test_duplicate_filter_names_disambiguated(self, catalog):
        sql = ("SELECT * FROM date_dim d, catalog_sales s "
               "WHERE s.cs_sold_date_sk = d.d_date_sk "
               "AND d.d_year > 1998 AND d.d_year < 2002")
        query = parse_query(sql, catalog)
        names = {f.name for f in query.filters}
        assert names == {"f_d_year", "f_d_year2"}


class TestErrors:
    def test_not_a_select(self, catalog):
        with pytest.raises(QueryError):
            parse_query("DELETE FROM date_dim", catalog)

    def test_unknown_alias(self, catalog):
        with pytest.raises(QueryError, match="alias"):
            parse_query(
                "SELECT * FROM date_dim d WHERE x.d_year = 2000",
                catalog)

    def test_duplicate_alias(self, catalog):
        with pytest.raises(QueryError, match="alias"):
            parse_query(
                "SELECT * FROM date_dim d, customer d "
                "WHERE d.d_year = 2000", catalog)

    def test_non_equi_join_rejected(self, catalog):
        with pytest.raises(QueryError, match="equi-join"):
            parse_query(
                "SELECT * FROM date_dim d, catalog_sales s "
                "WHERE s.cs_sold_date_sk < d.d_date_sk", catalog)

    def test_non_numeric_constant_rejected(self, catalog):
        with pytest.raises(QueryError, match="numeric"):
            parse_query(
                "SELECT * FROM date_dim d WHERE d.d_year = banana",
                catalog)

    def test_join_without_on(self, catalog):
        with pytest.raises(QueryError, match="ON"):
            parse_query(
                "SELECT * FROM date_dim d JOIN customer c", catalog)

    def test_disconnected_graph_caught_by_query(self, catalog):
        with pytest.raises(QueryError, match="disconnected"):
            parse_query(
                "SELECT * FROM date_dim d, customer c "
                "WHERE d.d_year = 2000", catalog)


class TestEndToEnd:
    def test_parsed_query_optimises(self, catalog):
        from repro.optimizer.dp import Optimizer
        query = parse_query(BASIC, catalog, name="parsed_q")
        result = Optimizer(query).optimize(
            {"cs_d": 1e-4, "cs_c": 1e-5})
        assert result.cost > 0
        assert result.plan.tables == frozenset(query.tables)
