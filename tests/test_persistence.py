"""Tests for exploration-space persistence (offline preprocessing)."""

import numpy as np
import pytest

from repro.algorithms.spillbound import SpillBound
from repro.common.errors import DiscoveryError
from repro.ess.contours import ContourSet
from repro.ess.persistence import (
    load_space,
    plan_from_dict,
    plan_to_dict,
    save_space,
)
from repro.ess.space import ExplorationSpace
from repro.metrics.mso import exhaustive_sweep


class TestPlanSerialisation:
    def test_roundtrip_signature(self, toy_space):
        for info in toy_space.plans:
            data = plan_to_dict(info.tree)
            restored = plan_from_dict(data)
            assert restored.signature() == info.tree.signature()

    def test_unknown_kind_rejected(self):
        with pytest.raises(DiscoveryError):
            plan_from_dict({"kind": "QuantumJoin"})


class TestSaveLoad:
    def test_roundtrip_identical_surfaces(self, toy_space, toy_query,
                                          tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        loaded = load_space(toy_query, path)
        assert np.array_equal(loaded.plan_at, toy_space.plan_at)
        assert np.allclose(loaded.opt_cost, toy_space.opt_cost)
        assert len(loaded.plans) == len(toy_space.plans)
        for a, b in zip(loaded.plans, toy_space.plans):
            assert np.allclose(a.cost, b.cost)
            assert a.tree.signature() == b.tree.signature()

    def test_grid_values_exact(self, toy_space, toy_query, tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        loaded = load_space(toy_query, path)
        for d in range(toy_space.grid.dims):
            assert np.array_equal(
                loaded.grid.values[d], toy_space.grid.values[d])

    def test_loaded_space_runs_identically(self, toy_space, toy_query,
                                           tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        loaded = load_space(toy_query, path)
        original = exhaustive_sweep(
            SpillBound(toy_space, ContourSet(toy_space)))
        restored = exhaustive_sweep(
            SpillBound(loaded, ContourSet(loaded)))
        assert np.allclose(
            original.sub_optimalities, restored.sub_optimalities)

    def test_unbuilt_space_rejected(self, toy_query, tmp_path):
        space = ExplorationSpace(toy_query, resolution=4, s_min=1e-5)
        with pytest.raises(DiscoveryError):
            save_space(space, str(tmp_path / "x.npz"))

    def test_fingerprint_mismatch_rejected(self, toy_space, toy_query_3d,
                                           tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        with pytest.raises(DiscoveryError, match="fingerprint"):
            load_space(toy_query_3d, path)
