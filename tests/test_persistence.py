"""Tests for exploration-space persistence (offline preprocessing)."""

import numpy as np
import pytest

from repro.algorithms.spillbound import SpillBound
from repro.common.errors import DiscoveryError
from repro.ess.contours import ContourSet
from repro.ess.persistence import (
    load_space,
    plan_from_dict,
    plan_to_dict,
    save_space,
)
from repro.ess.space import ExplorationSpace
from repro.metrics.mso import exhaustive_sweep


class TestPlanSerialisation:
    def test_roundtrip_signature(self, toy_space):
        for info in toy_space.plans:
            data = plan_to_dict(info.tree)
            restored = plan_from_dict(data)
            assert restored.signature() == info.tree.signature()

    def test_unknown_kind_rejected(self):
        with pytest.raises(DiscoveryError):
            plan_from_dict({"kind": "QuantumJoin"})


class TestSaveLoad:
    def test_roundtrip_identical_surfaces(self, toy_space, toy_query,
                                          tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        loaded = load_space(toy_query, path)
        assert np.array_equal(loaded.plan_at, toy_space.plan_at)
        assert np.allclose(loaded.opt_cost, toy_space.opt_cost)
        assert len(loaded.plans) == len(toy_space.plans)
        for a, b in zip(loaded.plans, toy_space.plans):
            assert np.allclose(a.cost, b.cost)
            assert a.tree.signature() == b.tree.signature()

    def test_grid_values_exact(self, toy_space, toy_query, tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        loaded = load_space(toy_query, path)
        for d in range(toy_space.grid.dims):
            assert np.array_equal(
                loaded.grid.values[d], toy_space.grid.values[d])

    def test_loaded_space_runs_identically(self, toy_space, toy_query,
                                           tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        loaded = load_space(toy_query, path)
        original = exhaustive_sweep(
            SpillBound(toy_space, ContourSet(toy_space)))
        restored = exhaustive_sweep(
            SpillBound(loaded, ContourSet(loaded)))
        assert np.allclose(
            original.sub_optimalities, restored.sub_optimalities)

    def test_unbuilt_space_rejected(self, toy_query, tmp_path):
        space = ExplorationSpace(toy_query, resolution=4, s_min=1e-5)
        with pytest.raises(DiscoveryError):
            save_space(space, str(tmp_path / "x.npz"))

    def test_fingerprint_mismatch_rejected(self, toy_space, toy_query_3d,
                                           tmp_path):
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        with pytest.raises(DiscoveryError, match="fingerprint"):
            load_space(toy_query_3d, path)

    def test_changed_predicate_set_rejected(self, toy_space, toy_catalog,
                                            tmp_path):
        # Identical query except one epp is no longer declared: the
        # archive's surfaces would be over the wrong dimensions.
        from repro.query.query import Query, make_filter, make_join
        renamed = Query(
            "toy_2d", toy_catalog,
            ["fact", "dim1", "dim2", "dim3"],
            [
                make_join("j1", "fact.f_dim1", "dim1.d1_id"),
                make_join("j2", "fact.f_dim2", "dim2.d2_id"),
                make_join("j3", "dim2.d2_link", "dim3.d3_id"),
            ],
            [make_filter("f1", "fact.f_val", "<", 100)],
            epps=("j1", "j3"),
        )
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        with pytest.raises(DiscoveryError, match="fingerprint"):
            load_space(renamed, path)

    def test_stale_format_version_rejected(self, toy_space, toy_query,
                                           tmp_path, monkeypatch):
        from repro.ess import persistence
        path = str(tmp_path / "space.npz")
        save_space(toy_space, path)
        monkeypatch.setattr(persistence, "FORMAT_VERSION", 99)
        with pytest.raises(DiscoveryError, match="version"):
            load_space(toy_query, path)
