"""Tests for the randomized PlanBouquet variant."""


from repro.algorithms.planbouquet import PlanBouquet
from repro.algorithms.randomized import RandomizedPlanBouquet
from repro.metrics.mso import exhaustive_sweep


class TestRandomizedPlanBouquet:
    def test_same_guarantee_as_deterministic(self, toy_space,
                                             toy_contours):
        det = PlanBouquet(toy_space, toy_contours)
        rand = RandomizedPlanBouquet(toy_space, toy_contours)
        assert rand.mso_guarantee() == det.mso_guarantee()

    def test_within_guarantee(self, toy_space, toy_contours):
        rand = RandomizedPlanBouquet(toy_space, toy_contours, seed=3)
        sweep = exhaustive_sweep(rand)
        assert sweep.mso <= rand.mso_guarantee() + 1e-6

    def test_reproducible_per_seed(self, toy_space, toy_contours):
        a = RandomizedPlanBouquet(toy_space, toy_contours, seed=5)
        b = RandomizedPlanBouquet(toy_space, toy_contours, seed=5)
        qa = (9, 4)
        assert a.run(qa).total_cost == b.run(qa).total_cost

    def test_seed_changes_orders(self, toy_space, toy_contours):
        costs = set()
        for seed in range(8):
            rand = RandomizedPlanBouquet(toy_space, toy_contours,
                                         seed=seed)
            costs.add(round(rand.run((9, 9)).total_cost, 6))
        assert len(costs) > 1  # different orders, different expenditure

    def test_terminates_everywhere(self, toy_space, toy_contours):
        rand = RandomizedPlanBouquet(toy_space, toy_contours, seed=1)
        for index in toy_space.grid.indices():
            result = rand.run(index)
            assert result.executions[-1].completed

    def test_expected_aso_not_worse_than_worst_seed(self, toy_space,
                                                    toy_contours):
        det = exhaustive_sweep(PlanBouquet(toy_space, toy_contours))
        rand_asos = [
            exhaustive_sweep(RandomizedPlanBouquet(
                toy_space, toy_contours, seed=s)).aso
            for s in range(3)
        ]
        # Averaged over seeds, randomisation should be comparable to or
        # better than the deterministic order (it cannot be adversarial).
        assert sum(rand_asos) / len(rand_asos) <= det.aso * 1.25
