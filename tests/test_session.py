"""Tests for the session layer: cache tiers, keys, lifecycle wiring."""

import numpy as np
import pytest

from repro.common.errors import DiscoveryError
from repro.ess.space import default_resolution
from repro.ess.synthetic import textbook_space
from repro.robustness import RetryPolicy
from repro.robustness.guard import DiscoveryGuard
from repro.session import (
    RobustSession,
    SpaceKey,
    default_session,
    set_default_session,
)


class TestSpaceKey:
    def test_equal_inputs_equal_digest(self, toy_query):
        a = SpaceKey.of(toy_query, resolution=8)
        b = SpaceKey.of(toy_query, resolution=8)
        assert a == b
        assert hash(a) == hash(b)
        assert a.digest() == b.digest()

    def test_resolution_changes_digest(self, toy_query):
        assert SpaceKey.of(toy_query, resolution=8).digest() != \
            SpaceKey.of(toy_query, resolution=9).digest()

    def test_predicate_set_changes_digest(self, toy_query, toy_query_3d):
        # Same tables and catalog, different epp declaration.
        assert SpaceKey.of(toy_query, resolution=8).digest() != \
            SpaceKey.of(toy_query_3d, resolution=8).digest()

    def test_mode_and_rng_in_key(self, toy_query):
        base = SpaceKey.of(toy_query, resolution=8)
        assert base != SpaceKey.of(toy_query, resolution=8, mode="exact")
        assert base != SpaceKey.of(toy_query, resolution=8, rng=7)

    def test_none_resolution_normalised(self, toy_query):
        implicit = SpaceKey.of(toy_query)
        explicit = SpaceKey.of(
            toy_query,
            resolution=default_resolution(toy_query.dimensions))
        assert implicit == explicit


class TestMemoryTier:
    def test_second_lookup_is_a_hit(self, toy_query):
        session = RobustSession(resolution=6)
        first = session.space(toy_query)
        second = session.space(toy_query)
        assert second is first
        assert session.stats.builds == 1
        assert session.stats.memory_hits == 1

    def test_contours_cached_per_ratio(self, toy_query):
        session = RobustSession(resolution=6)
        space, contours = session.space_and_contours(toy_query)
        space2, contours2 = session.space_and_contours(toy_query)
        assert space2 is space and contours2 is contours
        assert session.stats.contour_builds == 1
        assert session.stats.contour_hits == 1
        _, wider = session.space_and_contours(toy_query, ratio=3.0)
        assert wider is not contours
        assert session.stats.builds == 1

    def test_cache_false_bypasses_both_tiers(self, toy_query, tmp_path):
        session = RobustSession(resolution=6, cache_dir=str(tmp_path))
        a = session.space(toy_query, cache=False)
        b = session.space(toy_query, cache=False)
        assert a is not b
        assert session.stats.lookups == 0
        assert not list(tmp_path.iterdir())

    def test_lru_evicts_oldest(self, toy_query):
        session = RobustSession(memory_slots=1)
        session.space(toy_query, resolution=5)
        session.space(toy_query, resolution=6)
        session.space(toy_query, resolution=5)  # evicted -> rebuild
        assert session.stats.builds == 3
        assert session.stats.memory_hits == 0

    def test_distinct_knobs_distinct_spaces(self, toy_query):
        session = RobustSession()
        a = session.space(toy_query, resolution=5)
        b = session.space(toy_query, resolution=6)
        assert a.grid.shape != b.grid.shape
        assert session.stats.builds == 2


class TestDiskTier:
    def test_roundtrip_across_sessions(self, toy_query, tmp_path):
        writer = RobustSession(resolution=6, cache_dir=str(tmp_path))
        built = writer.space(toy_query)
        reader = RobustSession(resolution=6, cache_dir=str(tmp_path))
        loaded = reader.space(toy_query)
        assert reader.stats.disk_hits == 1
        assert reader.stats.builds == 0
        assert np.array_equal(loaded.plan_at, built.plan_at)
        assert np.allclose(loaded.opt_cost, built.opt_cost)

    def test_changed_resolution_misses(self, toy_query, tmp_path):
        RobustSession(resolution=6, cache_dir=str(tmp_path)).space(
            toy_query)
        reader = RobustSession(resolution=7, cache_dir=str(tmp_path))
        reader.space(toy_query)
        assert reader.stats.disk_hits == 0
        assert reader.stats.builds == 1
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_changed_predicate_set_misses(self, toy_query, toy_query_3d,
                                          tmp_path):
        RobustSession(resolution=6, cache_dir=str(tmp_path)).space(
            toy_query)
        reader = RobustSession(resolution=6, cache_dir=str(tmp_path))
        space = reader.space(toy_query_3d)
        assert reader.stats.disk_hits == 0
        assert reader.stats.builds == 1
        assert space.query.epps == toy_query_3d.epps

    def test_corrupt_archive_rebuilt_not_loaded(self, toy_query,
                                                tmp_path):
        writer = RobustSession(resolution=6, cache_dir=str(tmp_path))
        built = writer.space(toy_query)
        archive, = tmp_path.glob("*.npz")
        archive.write_bytes(b"not an npz archive")
        reader = RobustSession(resolution=6, cache_dir=str(tmp_path))
        space = reader.space(toy_query)
        assert reader.stats.invalidations == 1
        assert reader.stats.builds == 1
        assert space.built
        assert np.array_equal(space.plan_at, built.plan_at)

    def test_stale_format_version_rebuilt(self, toy_query, tmp_path,
                                          monkeypatch):
        writer = RobustSession(resolution=6, cache_dir=str(tmp_path))
        writer.space(toy_query)
        from repro.ess import persistence
        monkeypatch.setattr(persistence, "FORMAT_VERSION", 99)
        reader = RobustSession(resolution=6, cache_dir=str(tmp_path))
        space = reader.space(toy_query)
        assert reader.stats.invalidations == 1
        assert reader.stats.builds == 1
        assert space.built


class TestParallelBuild:
    def test_workers_bit_identical_to_serial(self, toy_query):
        serial = RobustSession(mode="exact", s_min=1e-5).space(
            toy_query, resolution=8)
        parallel = RobustSession(mode="exact", s_min=1e-5,
                                 workers=2).space(toy_query, resolution=8)
        assert np.array_equal(parallel.plan_at, serial.plan_at)
        assert np.array_equal(parallel.opt_cost, serial.opt_cost)
        assert len(parallel.plans) == len(serial.plans)
        for a, b in zip(parallel.plans, serial.plans):
            assert a.tree.signature() == b.tree.signature()
            assert np.array_equal(a.cost, b.cost)

    def test_workers_share_cache_key(self, toy_query):
        assert SpaceKey.of(toy_query, resolution=8, mode="exact") == \
            SpaceKey.of(toy_query, resolution=8, mode="exact")


class TestAlgorithmsAndRuns:
    def test_unknown_algorithm_rejected(self, toy_query):
        with pytest.raises(DiscoveryError, match="unknown algorithm"):
            RobustSession(resolution=6).algorithm("quantum", toy_query)

    def test_algorithm_needs_query_or_space(self):
        with pytest.raises(DiscoveryError, match="query= or space="):
            RobustSession().algorithm("spillbound")

    def test_guard_policy_wraps_algorithm(self, toy_query):
        session = RobustSession(resolution=6,
                                guard=RetryPolicy(max_retries=1))
        guarded = session.algorithm("spillbound", toy_query)
        assert isinstance(guarded, DiscoveryGuard)

    def test_guard_true_uses_default_policy(self, toy_query):
        session = RobustSession(resolution=6)
        guarded = session.algorithm("spillbound", toy_query, guard=True)
        assert isinstance(guarded, DiscoveryGuard)

    def test_run_default_truth(self, toy_query):
        result = RobustSession(resolution=6).run(toy_query)
        assert result.sub_optimality >= 1.0
        assert result.executions[-1].completed

    def test_run_with_noisy_spec(self, toy_query):
        session = RobustSession(resolution=6)
        result = session.run(toy_query, qa_index=(4, 4),
                             spec="+noisy(delta=0.2,seed=3)")
        assert result.executions[-1].completed

    def test_sweep_through_session(self, toy_query):
        sweep = RobustSession(resolution=6).sweep(
            toy_query, "spillbound", sample=8, rng=1)
        assert sweep.mso >= 1.0
        assert sweep.aso <= sweep.mso

    def test_contours_for_foreign_space(self):
        session = RobustSession()
        synthetic = textbook_space(resolution=16)
        first = session.contours_for(synthetic)
        second = session.contours_for(synthetic)
        assert second is first
        assert session.stats.contour_hits == 1


class TestSharedDefaultSession:
    def test_two_experiments_share_one_build(self):
        from repro.harness import experiments as exp
        previous = set_default_session(RobustSession())
        try:
            exp.fig8_mso_guarantees(names=("2D_Q91",), resolution=6)
            exp.table2_alignment(names=("2D_Q91",), resolution=6)
            assert default_session().stats.builds == 1
            assert default_session().stats.hits >= 1
        finally:
            set_default_session(previous)

    def test_build_space_shim_routes_through_session(self):
        from repro.harness.workloads import build_space, workload
        previous = set_default_session(RobustSession())
        try:
            query = workload("2D_Q91")
            first = build_space(query, resolution=6)
            second = build_space(query, resolution=6)
            assert second is first
            assert default_session().stats.builds == 1
        finally:
            set_default_session(previous)
