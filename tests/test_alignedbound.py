"""Tests for AlignedBound: partitions, PSA enforcement, guarantees."""

import math

import pytest

from repro.algorithms.alignedbound import AlignedBound, _set_partitions
from repro.algorithms.spillbound import SpillBound
from repro.metrics.mso import exhaustive_sweep


class TestSetPartitions:
    @pytest.mark.parametrize("n,bell", [(0, 1), (1, 1), (2, 2), (3, 5),
                                        (4, 15), (5, 52), (6, 203)])
    def test_counts_are_bell_numbers(self, n, bell):
        items = list(range(n))
        assert sum(1 for _ in _set_partitions(items)) == bell

    def test_parts_partition_the_set(self):
        items = ["a", "b", "c", "d"]
        for partition in _set_partitions(items):
            flat = [x for part in partition for x in part]
            assert sorted(flat) == sorted(items)
            assert len(flat) == len(set(flat))

    def test_parts_are_canonically_ordered(self):
        seen = set()
        for partition in _set_partitions([1, 2, 3, 4]):
            for part in partition:
                assert part == sorted(part)
                seen.add(tuple(part))
        # Each distinct subset appears with a single canonical ordering.
        assert all(t == tuple(sorted(t)) for t in seen)


class TestGuarantees:
    def test_upper_matches_spillbound(self, toy_space, toy_contours):
        ab = AlignedBound(toy_space, toy_contours)
        sb = SpillBound(toy_space, toy_contours)
        assert ab.mso_guarantee() == pytest.approx(sb.mso_guarantee())

    def test_lower_is_2d_plus_2(self, toy_space, toy_contours):
        ab = AlignedBound(toy_space, toy_contours)
        assert ab.mso_lower_guarantee() == pytest.approx(6.0)  # D = 2

    def test_lower_generalises_with_ratio(self, toy_space):
        from repro.ess.contours import ContourSet
        ab = AlignedBound(toy_space, ContourSet(toy_space, ratio=3.0))
        assert ab.mso_lower_guarantee() == pytest.approx(3 / 2 + 2 * 3)


class TestExecution:
    def test_all_locations_terminate(self, toy_space, toy_contours):
        ab = AlignedBound(toy_space, toy_contours)
        for index in toy_space.grid.indices():
            result = ab.run(index)
            assert result.executions[-1].completed

    def test_within_quadratic_bound(self, toy_space, toy_contours):
        ab = AlignedBound(toy_space, toy_contours)
        sweep = exhaustive_sweep(ab)
        assert sweep.mso <= ab.mso_guarantee() + 1e-6

    def test_3d_within_bound(self, toy_space_3d, toy_contours_3d):
        ab = AlignedBound(toy_space_3d, toy_contours_3d)
        sweep = exhaustive_sweep(ab)
        assert sweep.mso <= ab.mso_guarantee() + 1e-6

    def test_q91_within_bound(self, q91_2d_space, q91_2d_contours):
        ab = AlignedBound(q91_2d_space, q91_2d_contours)
        sweep = exhaustive_sweep(ab)
        assert sweep.mso <= ab.mso_guarantee() + 1e-6

    def test_never_plans_costlier_than_singletons(self, toy_space_3d,
                                                  toy_contours_3d):
        """The all-singletons partition (penalty = #dims with spilling
        plans) is always available, so the chosen partition's penalty is
        at most D."""
        ab = AlignedBound(toy_space_3d, toy_contours_3d)
        d = toy_space_3d.query.dimensions
        for index in [(0, 0, 0), (3, 5, 7), (7, 7, 7), (1, 6, 2)]:
            result = ab.run(index)
            penalty = result.extras.get("max_penalty", 0.0)
            assert penalty <= d + 1e-9

    def test_max_penalty_recorded(self, toy_space_3d, toy_contours_3d):
        ab = AlignedBound(toy_space_3d, toy_contours_3d)
        result = ab.run((4, 4, 4))
        assert result.extras.get("max_penalty", 0.0) >= 0.0
        assert math.isfinite(result.extras.get("max_penalty", 0.0))

    def test_analysis_cache_reused(self, toy_space, toy_contours):
        ab = AlignedBound(toy_space, toy_contours)
        ab.run((5, 5))
        size_after_first = len(ab._analysis_cache)
        ab.run((5, 6))
        # Shared prefix contours come from the cache; it grows by at
        # most the new states, never resets.
        assert len(ab._analysis_cache) >= size_after_first

    def test_penalty_cap_falls_back_cleanly(self, toy_space_3d,
                                            toy_contours_3d):
        """With an impossible penalty cap, induced parts are rejected
        but singleton/native parts keep the algorithm alive."""
        ab = AlignedBound(toy_space_3d, toy_contours_3d,
                          max_penalty=1.0)
        result = ab.run((4, 4, 4))
        assert result.executions[-1].completed

    def test_no_worse_than_spillbound_aso(self, toy_space_3d,
                                          toy_contours_3d):
        ab_sweep = exhaustive_sweep(
            AlignedBound(toy_space_3d, toy_contours_3d))
        sb_sweep = exhaustive_sweep(
            SpillBound(toy_space_3d, toy_contours_3d))
        # AB targets worst-case pruning efficiency; on average it should
        # be at least in SpillBound's neighbourhood.
        assert ab_sweep.aso <= sb_sweep.aso * 1.5
