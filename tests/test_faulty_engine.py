"""Tests for the seeded fault-injection engine."""

import pytest

from repro.common.errors import (
    DiscoveryError,
    EngineCrashError,
    TransientEngineError,
)
from repro.engine.faulty import (
    CRASH_SPEND_HI,
    CRASH_SPEND_LO,
    FaultPlan,
    FaultyEngine,
)
from repro.engine.noisy import NoisyEngine
from repro.engine.simulated import SimulatedEngine


def _spill_parts(space, qa):
    plan = space.optimal_plan(qa)
    target = plan.spill_target(set(space.query.epps))
    assert target is not None
    epp, node = target
    return plan, epp, node


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corruption_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(drift_factor=0.5)

    def test_is_clean(self):
        assert FaultPlan().is_clean
        assert not FaultPlan(crash_rate=0.1).is_clean
        assert not FaultPlan(transient_on_calls=(3,)).is_clean

    def test_parse_bare_float(self):
        plan = FaultPlan.parse("0.2", seed=5)
        assert plan.crash_rate == 0.2
        assert plan.seed == 5
        assert plan.transient_rate == plan.corruption_rate == 0.0

    def test_parse_kv_list(self):
        plan = FaultPlan.parse(
            "crash=0.2,transient=0.3,corrupt=0.1,drift=0.05,"
            "drift_factor=2.0")
        assert plan.crash_rate == 0.2
        assert plan.transient_rate == 0.3
        assert plan.corruption_rate == 0.1
        assert plan.drift_rate == 0.05
        assert plan.drift_factor == 2.0

    def test_parse_rejects_unknown_knob(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode=1")

    def test_describe(self):
        assert FaultPlan().describe() == "clean"
        assert FaultPlan(crash_rate=0.2).describe() == "crash=0.2"


class TestFaultInjection:
    def test_transient_fires_before_spend_then_clears(self, toy_space):
        engine = FaultyEngine(
            toy_space, (8, 8), plan=FaultPlan(transient_on_calls=(1,)))
        plan = toy_space.optimal_plan((8, 8))
        with pytest.raises(TransientEngineError):
            engine.execute(plan, float("inf"))
        # Resubmission sees a fresh call ordinal and succeeds.
        assert engine.execute(plan, float("inf")).completed

    def test_crash_loses_partial_spend(self, toy_space):
        engine = FaultyEngine(
            toy_space, (8, 8), plan=FaultPlan(crash_on_calls=(1,)))
        plan = toy_space.optimal_plan((8, 8))
        cost = toy_space.optimal_cost((8, 8))
        with pytest.raises(EngineCrashError) as info:
            engine.execute(plan, cost * 2.0)
        assert CRASH_SPEND_LO * cost <= info.value.spent
        assert info.value.spent <= CRASH_SPEND_HI * cost

    def test_corruption_stays_in_index_range(self, toy_space):
        engine = FaultyEngine(
            toy_space, (8, 8), plan=FaultPlan(corruption_rate=1.0, seed=3))
        plan, epp, node = _spill_parts(toy_space, (8, 8))
        dim = toy_space.query.epp_index(epp)
        res = len(toy_space.grid.values[dim])
        seen = set()
        for _ in range(20):
            outcome = engine.execute_spill(plan, epp, node, float("inf"))
            assert outcome.completed
            assert -1 <= outcome.learned_index < res
            seen.add(outcome.learned_index)
        # Garbage, not a constant offset.
        assert len(seen) > 1

    def test_drift_inflates_spent(self, toy_space):
        engine = FaultyEngine(
            toy_space, (8, 8),
            plan=FaultPlan(drift_rate=1.0, drift_factor=2.0, seed=1))
        plan = toy_space.optimal_plan((8, 8))
        cost = toy_space.optimal_cost((8, 8))
        spents = [engine.execute(plan, float("inf")).spent
                  for _ in range(10)]
        for spent in spents:
            assert cost - 1e-9 <= spent <= cost * 2.0 + 1e-9
        assert max(spents) > cost * 1.001

    def test_fault_stream_deterministic(self, toy_space):
        plan_spec = dict(crash_rate=0.3, transient_rate=0.2,
                         corruption_rate=0.3, drift_rate=0.3)

        def trace(engine):
            plan, epp, node = _spill_parts(toy_space, (8, 8))
            events = []
            for _ in range(30):
                try:
                    o = engine.execute_spill(plan, epp, node, float("inf"))
                    events.append(("ok", o.learned_index,
                                   round(o.spent, 6)))
                except TransientEngineError:
                    events.append(("transient",))
                except EngineCrashError as exc:
                    events.append(("crash", round(exc.spent, 6)))
            return events

        a = trace(FaultyEngine(toy_space, (8, 8),
                               plan=FaultPlan(seed=11, **plan_spec)))
        b = trace(FaultyEngine(toy_space, (8, 8),
                               plan=FaultPlan(seed=11, **plan_spec)))
        c = trace(FaultyEngine(toy_space, (8, 8),
                               plan=FaultPlan(seed=12, **plan_spec)))
        assert a == b
        assert a != c

    def test_clean_plan_matches_simulated_engine(self, toy_space):
        faulty = FaultyEngine(toy_space, (8, 8))
        clean = SimulatedEngine(toy_space, (8, 8))
        plan, epp, node = _spill_parts(toy_space, (8, 8))
        assert faulty.execute(plan, 100.0).spent == \
            clean.execute(plan, 100.0).spent
        fo = faulty.execute_spill(plan, epp, node, float("inf"))
        co = clean.execute_spill(plan, epp, node, float("inf"))
        assert (fo.completed, fo.spent, fo.learned_index) == \
            (co.completed, co.spent, co.learned_index)


class TestComposition:
    def test_composes_with_noisy_base(self, toy_space):
        base = NoisyEngine(toy_space, (8, 8), delta=0.3, seed=7)
        engine = FaultyEngine(toy_space, (8, 8), base=base)
        plan = toy_space.optimal_plan((8, 8))
        assert engine.optimal_cost == base.optimal_cost
        assert engine.true_cost(plan) == base.true_cost(plan)
        assert engine.execute(plan, float("inf")).spent == \
            pytest.approx(base.true_cost(plan))

    def test_base_truth_mismatch_rejected(self, toy_space):
        base = NoisyEngine(toy_space, (3, 3), delta=0.1)
        with pytest.raises(DiscoveryError):
            FaultyEngine(toy_space, (8, 8), base=base)

    def test_sound_strips_the_fault_layer(self, toy_space):
        engine = FaultyEngine(toy_space, (8, 8),
                              plan=FaultPlan(crash_rate=1.0))
        sound = engine.sound()
        assert type(sound) is SimulatedEngine
        assert sound.qa_index == (8, 8)
        base = NoisyEngine(toy_space, (8, 8), delta=0.2)
        assert FaultyEngine(toy_space, (8, 8), base=base).sound() is base
