"""Tests for the MSO/ASO sweep machinery and histograms."""

import numpy as np
import pytest

from repro.algorithms.oracle import Oracle
from repro.algorithms.spillbound import SpillBound
from repro.metrics.distribution import suboptimality_histogram
from repro.metrics.mso import SweepResult, exhaustive_sweep


class TestSweep:
    def test_oracle_sweep_is_unity(self, toy_space):
        sweep = exhaustive_sweep(Oracle(toy_space))
        assert sweep.mso == pytest.approx(1.0)
        assert sweep.aso == pytest.approx(1.0)

    def test_mso_at_least_aso(self, toy_space, toy_contours):
        sweep = exhaustive_sweep(SpillBound(toy_space, toy_contours))
        assert sweep.mso >= sweep.aso >= 1.0

    def test_shape_matches_grid(self, toy_space, toy_contours):
        sweep = exhaustive_sweep(SpillBound(toy_space, toy_contours))
        assert sweep.sub_optimalities.shape == toy_space.grid.shape

    def test_worst_location_attains_mso(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        sweep = exhaustive_sweep(sb)
        worst = sweep.worst_location()
        assert sb.run(worst).sub_optimality == pytest.approx(sweep.mso)

    def test_sampled_sweep_subset(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        sampled = exhaustive_sweep(sb, sample=32, rng=0)
        full = exhaustive_sweep(sb)
        assert sampled.sub_optimalities.shape == (32,)
        assert sampled.mso <= full.mso + 1e-9

    def test_sampled_worst_location_is_a_grid_coordinate(
            self, toy_space, toy_contours):
        """Regression: a sampled sweep's worst_location used to be an
        offset into the sample, not a coordinate of the space."""
        sb = SpillBound(toy_space, toy_contours)
        sampled = exhaustive_sweep(sb, sample=32, rng=0)
        worst = sampled.worst_location()
        assert len(worst) == toy_space.grid.dims
        assert all(0 <= i < s
                   for i, s in zip(worst, toy_space.grid.shape))
        # Re-running at the mapped location reproduces the sampled MSO.
        assert sb.run(worst).sub_optimality == pytest.approx(sampled.mso)

    def test_sweep_extras_always_carry_degradation_keys(
            self, toy_space, toy_contours):
        """Regression: an un-degraded sweep used to drop
        ``degraded_reasons``, so consumers could not tell "clean" from
        "not tracked"."""
        sweep = exhaustive_sweep(SpillBound(toy_space, toy_contours),
                                 sample=4, rng=0)
        assert sweep.extras["degraded"] == 0
        assert sweep.extras["degraded_reasons"] == {}

    def test_progress_callback(self, toy_space, toy_contours):
        calls = []
        exhaustive_sweep(
            SpillBound(toy_space, toy_contours),
            sample=8, rng=1,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls[-1] == (8, 8)

    def test_fraction_below(self):
        sweep = SweepResult("x", np.array([1.0, 2.0, 6.0, 20.0]), (4,))
        assert sweep.fraction_below(5.0) == pytest.approx(0.5)
        assert sweep.fraction_below(100.0) == pytest.approx(1.0)


class TestHistogram:
    def test_percentages_total_100(self, toy_space, toy_contours):
        sweep = exhaustive_sweep(SpillBound(toy_space, toy_contours))
        rows = suboptimality_histogram(sweep)
        assert sum(share for _label, share in rows) == pytest.approx(100.0)

    def test_bin_labels(self):
        sweep = SweepResult("x", np.array([1.0, 7.0, 100.0]), (3,))
        rows = suboptimality_histogram(sweep, bin_width=5.0, max_bins=3)
        labels = [label for label, _ in rows]
        assert labels == ["0-5", "5-10", ">=10"]
        shares = dict(rows)
        assert shares["0-5"] == pytest.approx(100 / 3)
        assert shares[">=10"] == pytest.approx(100 / 3)
