"""Integration tests: discovery algorithms over the row executor."""

import pytest

from repro.algorithms.alignedbound import AlignedBound
from repro.algorithms.oracle import Oracle
from repro.algorithms.spillbound import SpillBound
from repro.catalog.datagen import generate_database, true_join_selectivity
from repro.catalog.schema import Catalog, Column, Table
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.executor.rowengine import RowBackedEngine
from repro.query.query import Query, make_filter, make_join


@pytest.fixture(scope="module")
def row_setup():
    catalog = Catalog("rowcat", [
        Table("fact", 3000, [
            Column("f_id", 3000),
            Column("f_d1", 80),
            Column("f_d2", 60),
            Column("f_val", 40, lo=0, hi=40),
        ]),
        Table("d1", 120, [Column("k1", 80)]),
        Table("d2", 90, [Column("k2", 60)]),
    ])
    query = Query(
        "row_q", catalog,
        ["fact", "d1", "d2"],
        [
            make_join("j1", "fact.f_d1", "d1.k1"),
            make_join("j2", "fact.f_d2", "d2.k2"),
        ],
        [make_filter("f", "fact.f_val", "<", 20)],
        epps=("j1", "j2"),
    )
    database = generate_database(
        catalog, rng=9, skew={"fact.f_d1": 1.5, "d1.k1": 1.0}
    )
    space = ExplorationSpace(query, resolution=14, s_min=1e-5)
    space.build(mode="exact")
    return query, database, space


class TestTruthDiscovery:
    def test_matches_data_selectivity(self, row_setup):
        query, database, space = row_setup
        engine = RowBackedEngine(space, database)
        sel = true_join_selectivity(
            database["fact"]["f_d1"], database["d1"]["k1"])
        d = query.epp_index("j1")
        learned = space.grid.values[d][engine.qa_index[d]]
        # Snapped to the nearest grid point: within one grid step.
        step = space.grid.values[d][1] / space.grid.values[d][0]
        assert learned / sel < step
        assert sel / learned < step


class TestRowBackedDiscovery:
    def test_spillbound_completes(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=1.0)
        sb = SpillBound(space, ContourSet(space))
        result = sb.run(engine.qa_index, engine=engine)
        assert result.executions[-1].completed
        assert result.total_cost > 0

    def test_alignedbound_completes(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=1.0)
        ab = AlignedBound(space, ContourSet(space))
        result = ab.run(engine.qa_index, engine=engine)
        assert result.executions[-1].completed

    def test_oracle_on_rows(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database)
        result = Oracle(space).run(engine.qa_index, engine=engine)
        assert result.sub_optimality == pytest.approx(1.0)

    def test_spill_learning_near_truth(self, row_setup):
        """A completed spill execution must learn (approximately) the
        data's true selectivity."""
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=1.0)
        sb = SpillBound(space, ContourSet(space))
        result = sb.run(engine.qa_index, engine=engine)
        for record in result.executions:
            if record.mode == "spill" and record.completed:
                dim = space.query.epp_index(record.epp)
                assert abs(record.learned - engine.qa_index[dim]) <= 1
