"""Integration tests: discovery algorithms over the row executor."""

import pytest

from repro.algorithms.alignedbound import AlignedBound
from repro.algorithms.oracle import Oracle
from repro.algorithms.spillbound import SpillBound
from repro.catalog.datagen import generate_database, true_join_selectivity
from repro.catalog.schema import Catalog, Column, Table
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.executor.rowengine import RowBackedEngine
from repro.query.query import Query, make_filter, make_join


@pytest.fixture(scope="module")
def row_setup():
    catalog = Catalog("rowcat", [
        Table("fact", 3000, [
            Column("f_id", 3000),
            Column("f_d1", 80),
            Column("f_d2", 60),
            Column("f_val", 40, lo=0, hi=40),
        ]),
        Table("d1", 120, [Column("k1", 80)]),
        Table("d2", 90, [Column("k2", 60)]),
    ])
    query = Query(
        "row_q", catalog,
        ["fact", "d1", "d2"],
        [
            make_join("j1", "fact.f_d1", "d1.k1"),
            make_join("j2", "fact.f_d2", "d2.k2"),
        ],
        [make_filter("f", "fact.f_val", "<", 20)],
        epps=("j1", "j2"),
    )
    database = generate_database(
        catalog, rng=9, skew={"fact.f_d1": 1.5, "d1.k1": 1.0}
    )
    space = ExplorationSpace(query, resolution=14, s_min=1e-5)
    space.build(mode="exact")
    return query, database, space


class TestTruthDiscovery:
    def test_matches_data_selectivity(self, row_setup):
        query, database, space = row_setup
        engine = RowBackedEngine(space, database)
        sel = true_join_selectivity(
            database["fact"]["f_d1"], database["d1"]["k1"])
        d = query.epp_index("j1")
        learned = space.grid.values[d][engine.qa_index[d]]
        # Snapped to the nearest grid point: within one grid step.
        step = space.grid.values[d][1] / space.grid.values[d][0]
        assert learned / sel < step
        assert sel / learned < step


class TestRowBackedDiscovery:
    def test_spillbound_completes(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=1.0)
        sb = SpillBound(space, ContourSet(space))
        result = sb.run(engine.qa_index, engine=engine)
        assert result.executions[-1].completed
        assert result.total_cost > 0

    def test_alignedbound_completes(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=1.0)
        ab = AlignedBound(space, ContourSet(space))
        result = ab.run(engine.qa_index, engine=engine)
        assert result.executions[-1].completed

    def test_oracle_on_rows(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database)
        result = Oracle(space).run(engine.qa_index, engine=engine)
        assert result.sub_optimality == pytest.approx(1.0)

    def test_spill_learning_near_truth(self, row_setup):
        """A completed spill execution must learn (approximately) the
        data's true selectivity."""
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=1.0)
        sb = SpillBound(space, ContourSet(space))
        result = sb.run(engine.qa_index, engine=engine)
        for record in result.executions:
            if record.mode == "spill" and record.completed:
                dim = space.query.epp_index(record.epp)
                assert abs(record.learned - engine.qa_index[dim]) <= 1


class TestObservedThreading:
    """Abort-time monitor snapshots ride on BudgetExhaustedError so a
    budget-killed execution still teaches a selectivity bound."""

    def test_meter_raise_carries_observations(self):
        from repro.common.errors import BudgetExhaustedError
        from repro.executor.runtime import CostMeter

        meter = CostMeter(budget=1.0, observer=lambda: {7: (10, 20, 5)})
        with pytest.raises(BudgetExhaustedError) as info:
            meter.charge(2.0)
        assert info.value.observed == {7: (10, 20, 5)}
        assert info.value.spent == 2.0

    def _spill_parts(self, space):
        plan = space.optimal_plan((0,) * space.grid.dims)
        target = plan.spill_target(set(space.query.epps))
        assert target is not None
        return plan, target

    def test_aborted_run_reports_observed(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=0.0)
        plan, (_epp, node) = self._spill_parts(space)
        full = engine.row_engine.run(
            plan.tree, budget=None, spill_node_id=node.node_id)
        partial = engine.row_engine.run(
            plan.tree, budget=full.spent * 0.75,
            spill_node_id=node.node_id)
        assert not partial.completed
        assert partial.observed is not None
        assert node.node_id in partial.observed
        assert full.observed is None

    def test_partial_spill_learns_from_abort_snapshot(self, row_setup):
        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=0.0)
        plan, (epp, node) = self._spill_parts(space)
        full = engine.execute_spill(plan, epp, node, float("inf"))
        assert full.completed
        partial = engine.execute_spill(plan, epp, node, full.spent * 0.75)
        assert not partial.completed
        dim = space.query.epp_index(epp)
        res = len(space.grid.values[dim])
        # The abort snapshot has seen join output by 75% of the full
        # cost, so the adapter derives a bound instead of learning
        # nothing; ExecutionRecord.learned stays a valid grid index.
        assert 0 <= partial.learned_index < res

    def test_vectorized_backend_also_observes(self, row_setup):
        from repro.executor.vectorized import VectorEngine

        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=0.0,
                                 executor_cls=VectorEngine)
        plan, (_epp, node) = self._spill_parts(space)
        full = engine.row_engine.run(
            plan.tree, budget=None, spill_node_id=node.node_id)
        partial = engine.row_engine.run(
            plan.tree, budget=full.spent * 0.75,
            spill_node_id=node.node_id)
        assert not partial.completed
        assert partial.observed is not None


class TestBackendSelection:
    def test_backend_and_executor_cls_are_exclusive(self, row_setup):
        from repro.common.errors import ExecutionError
        from repro.executor.vectorized import VectorEngine

        _query, database, space = row_setup
        with pytest.raises(ExecutionError, match="not both"):
            RowBackedEngine(space, database, backend="sqlite",
                            executor_cls=VectorEngine)

    def test_backend_name_reflects_the_substrate(self, row_setup):
        _query, database, space = row_setup
        assert RowBackedEngine(space, database).backend_name == "native"
        assert RowBackedEngine(
            space, database, backend="sqlite").backend_name == "sqlite"

    def test_sqlite_backend_discovers_the_same_truth(self, row_setup):
        _query, database, space = row_setup
        native = RowBackedEngine(space, database)
        sqlite = RowBackedEngine(space, database, backend="sqlite")
        assert sqlite.qa_index == native.qa_index


class TestMonitorContract:
    def test_index_join_completion_sets_left_done(self, row_setup):
        """Regression: the index join's outer side used to finish
        without flipping ``left_done``, making completed-run
        selectivities unreadable under the done-flag guard."""
        from repro.plans.nodes import IndexNLJoin, SeqScan, finalize_plan

        _query, database, space = row_setup
        engine = RowBackedEngine(space, database)
        plan = finalize_plan(
            IndexNLJoin(SeqScan("fact"), ("j1",), "d1", "k1"))
        result = engine.row_engine.run(plan, budget=None)
        monitor = result.monitors[plan.node_id]
        assert monitor.left_done and monitor.right_done
        assert monitor.selectivity > 0

    def test_partial_spill_uses_monitor_when_snapshot_missing(
            self, row_setup):
        """Regression for the ``observed is None and monitor is not
        None`` fallback: a backend reporting live monitors but no abort
        snapshot must still teach a selectivity bound."""
        from repro.ir.contracts import ExecutionResult, JoinMonitor

        _query, database, space = row_setup
        engine = RowBackedEngine(space, database, delta=0.0)
        plan = space.optimal_plan((0,) * space.grid.dims)
        target = plan.spill_target(set(space.query.epps))
        assert target is not None
        epp, node = target

        monitor = JoinMonitor()
        monitor.left_rows, monitor.right_rows = 50, 40
        monitor.out_rows = 20

        class _StubBackend:
            def run(self, tree, budget=None, spill_node_id=None,
                    keep_rows=False):
                return ExecutionResult(
                    False, 0, budget, {node.node_id: monitor},
                    observed=None)

        engine.row_engine = _StubBackend()
        outcome = engine.execute_spill(plan, epp, node, budget=10.0)
        assert not outcome.completed
        dim = space.query.epp_index(epp)
        expected = space.grid.snap_down(dim, 20 / (50.0 * 40.0))
        assert outcome.learned_index == expected
