"""Tests for the row-level iterator executor against numpy ground truth."""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database
from repro.catalog.schema import Catalog, Column, Table
from repro.common.errors import ExecutionError
from repro.executor.runtime import CostMeter, RowEngine
from repro.common.errors import BudgetExhaustedError
from repro.plans.nodes import (
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    finalize_plan,
)
from repro.query.query import Query, make_filter, make_join


@pytest.fixture(scope="module")
def exec_catalog():
    return Catalog("exec", [
        Table("orders", 400, [
            Column("o_id", 400),
            Column("o_cust", 40),
            Column("o_total", 50, lo=0, hi=50),
        ]),
        Table("cust", 60, [
            Column("c_id", 40),
            Column("c_region", 5, lo=0, hi=5),
        ]),
        Table("region", 10, [
            Column("r_id", 5),
            Column("r_attr", 3, lo=0, hi=3),
        ]),
    ])


@pytest.fixture(scope="module")
def exec_query(exec_catalog):
    return Query(
        "exec_q", exec_catalog,
        ["orders", "cust", "region"],
        [
            make_join("oc", "orders.o_cust", "cust.c_id"),
            make_join("cr", "cust.c_region", "region.r_id"),
        ],
        [make_filter("cheap", "orders.o_total", "<", 25)],
        epps=("oc", "cr"),
    )


@pytest.fixture(scope="module")
def exec_db(exec_catalog):
    return generate_database(exec_catalog, rng=5)


def numpy_join_count(db):
    """Ground-truth row count of the full query via numpy."""
    orders = db["orders"]
    cust = db["cust"]
    region = db["region"]
    mask = orders["o_total"] < 25
    o_cust = orders["o_cust"][mask]
    count = 0
    for c_id, c_region in zip(cust["c_id"], cust["c_region"]):
        order_matches = int(np.count_nonzero(o_cust == c_id))
        region_matches = int(np.count_nonzero(region["r_id"] == c_region))
        count += order_matches * region_matches
    return count


def plan_with(join_cls, exec_query):
    plan = join_cls(
        join_cls(
            SeqScan("orders", ("cheap",)),
            SeqScan("cust"),
            ("oc",),
        ),
        SeqScan("region"),
        ("cr",),
    )
    return finalize_plan(plan)


class TestCostMeter:
    def test_accumulates(self):
        meter = CostMeter()
        meter.charge(1.5)
        meter.charge(2.5)
        assert meter.spent == pytest.approx(4.0)

    def test_budget_enforced(self):
        meter = CostMeter(budget=1.0)
        meter.charge(0.9)
        with pytest.raises(BudgetExhaustedError):
            meter.charge(0.2)


class TestCorrectness:
    @pytest.mark.parametrize("join_cls",
                             [HashJoin, MergeJoin, NestedLoopJoin])
    def test_matches_numpy_ground_truth(self, join_cls, exec_query,
                                        exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(join_cls, exec_query)
        result = engine.run(plan)
        assert result.completed
        assert result.row_count == numpy_join_count(exec_db)

    def test_all_operators_agree(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        counts = {
            cls.__name__: engine.run(plan_with(cls, exec_query)).row_count
            for cls in (HashJoin, MergeJoin, NestedLoopJoin)
        }
        assert len(set(counts.values())) == 1

    def test_rows_carry_all_columns(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(HashJoin, exec_query)
        result = engine.run(plan, keep_rows=True)
        if result.rows:
            row = result.rows[0]
            assert "orders.o_id" in row
            assert "cust.c_region" in row
            assert "region.r_attr" in row

    def test_filter_applied(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = finalize_plan(SeqScan("orders", ("cheap",)))
        result = engine.run(plan)
        expected = int(np.count_nonzero(exec_db["orders"]["o_total"] < 25))
        assert result.row_count == expected

    def test_unknown_table_raises(self, exec_query):
        engine = RowEngine({}, exec_query)
        with pytest.raises(ExecutionError):
            engine.run(finalize_plan(SeqScan("orders")))


class TestBudgets:
    def test_budget_abort_partial(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(HashJoin, exec_query)
        full = engine.run(plan)
        partial = engine.run(plan, budget=full.spent / 4)
        assert not partial.completed
        assert partial.spent <= full.spent / 4 + 1.0
        assert partial.row_count <= full.row_count

    def test_generous_budget_completes(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(HashJoin, exec_query)
        full = engine.run(plan)
        again = engine.run(plan, budget=full.spent * 1.01)
        assert again.completed
        assert again.spent == pytest.approx(full.spent)


class TestSpilling:
    def test_spill_truncates_plan(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(HashJoin, exec_query)
        bottom_join = plan.left  # the oc join node
        result = engine.run(plan, spill_node_id=bottom_join.node_id)
        assert result.completed
        # Spilled output = orders(filtered) x cust matches.
        mask = exec_db["orders"]["o_total"] < 25
        o_cust = exec_db["orders"]["o_cust"][mask]
        expected = sum(
            int(np.count_nonzero(o_cust == c))
            for c in exec_db["cust"]["c_id"]
        )
        assert result.row_count == expected

    def test_spill_cheaper_than_full(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(HashJoin, exec_query)
        full = engine.run(plan)
        spilled = engine.run(plan, spill_node_id=plan.left.node_id)
        assert spilled.spent < full.spent

    def test_monitor_selectivity_exact(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(HashJoin, exec_query)
        node_id = plan.left.node_id
        sel = engine.true_selectivity(plan, node_id)
        mask = exec_db["orders"]["o_total"] < 25
        o_cust = exec_db["orders"]["o_cust"][mask]
        matches = sum(
            int(np.count_nonzero(o_cust == c))
            for c in exec_db["cust"]["c_id"]
        )
        expected = matches / (len(o_cust) * len(exec_db["cust"]["c_id"]))
        assert sel == pytest.approx(expected)

    def test_monitor_partial_lower_bound(self, exec_query, exec_db):
        engine = RowEngine(exec_db, exec_query)
        plan = plan_with(HashJoin, exec_query)
        node_id = plan.left.node_id
        full = engine.run(plan, spill_node_id=node_id)
        partial = engine.run(plan, budget=full.spent / 3,
                             spill_node_id=node_id)
        if not partial.completed and node_id in partial.monitors:
            monitor = partial.monitors[node_id]
            truth = full.monitors[node_id]
            bound = monitor.lower_bound(truth.left_rows, truth.right_rows)
            assert bound <= truth.selectivity + 1e-12
