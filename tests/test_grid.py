"""Tests for the selectivity grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.ess.grid import SelectivityGrid


class TestConstruction:
    def test_endpoints_exact(self):
        grid = SelectivityGrid(2, 10, s_min=1e-6)
        for d in range(2):
            assert grid.values[d][0] == 1e-6
            assert grid.values[d][-1] == 1.0

    def test_log_spacing(self):
        grid = SelectivityGrid(1, 7, s_min=1e-6)
        ratios = grid.values[0][1:] / grid.values[0][:-1]
        assert np.allclose(ratios, ratios[0])

    def test_per_dimension_resolution(self):
        grid = SelectivityGrid(3, [4, 5, 6])
        assert grid.shape == (4, 5, 6)
        assert grid.size == 120

    def test_per_dimension_range(self):
        grid = SelectivityGrid(2, 4, s_min=[1e-4, 1e-2])
        assert grid.values[0][0] == 1e-4
        assert grid.values[1][0] == 1e-2

    def test_rejects_bad_dims(self):
        with pytest.raises(QueryError):
            SelectivityGrid(0, 4)

    def test_rejects_tiny_resolution(self):
        with pytest.raises(QueryError):
            SelectivityGrid(2, 1)

    def test_rejects_bad_range(self):
        with pytest.raises(QueryError):
            SelectivityGrid(1, 4, s_min=0.0)
        with pytest.raises(QueryError):
            SelectivityGrid(1, 4, s_min=0.5, s_max=0.1)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(QueryError):
            SelectivityGrid(2, [4, 5, 6])


class TestCoordinates:
    def test_origin_terminus(self):
        grid = SelectivityGrid(3, 5)
        assert grid.origin == (0, 0, 0)
        assert grid.terminus == (4, 4, 4)

    def test_location_values(self):
        grid = SelectivityGrid(2, 5, s_min=1e-4)
        loc = grid.location((0, 4))
        assert loc[0] == pytest.approx(1e-4)
        assert loc[1] == pytest.approx(1.0)

    @given(st.integers(0, 5 * 7 - 1))
    @settings(max_examples=40, deadline=None)
    def test_flat_unflat_roundtrip(self, offset):
        grid = SelectivityGrid(2, [5, 7])
        assert grid.flat(grid.unflat(offset)) == offset

    def test_indices_cover_grid(self):
        grid = SelectivityGrid(2, 3)
        assert len(list(grid.indices())) == 9

    def test_meshes_shape_and_values(self):
        grid = SelectivityGrid(2, [3, 4])
        meshes = grid.meshes()
        assert meshes[0].shape == (3, 4)
        assert meshes[0][2, 0] == grid.values[0][2]
        assert meshes[1][0, 3] == grid.values[1][3]


class TestSnapping:
    def test_snap_down_exact_hit(self):
        grid = SelectivityGrid(1, 7, s_min=1e-6)
        value = float(grid.values[0][3])
        assert grid.snap_down(0, value) == 3

    def test_snap_down_between(self):
        grid = SelectivityGrid(1, 7, s_min=1e-6)
        between = float(np.sqrt(grid.values[0][3] * grid.values[0][4]))
        assert grid.snap_down(0, between) == 3

    def test_snap_up_between(self):
        grid = SelectivityGrid(1, 7, s_min=1e-6)
        between = float(np.sqrt(grid.values[0][3] * grid.values[0][4]))
        assert grid.snap_up(0, between) == 4

    def test_snap_clamps(self):
        grid = SelectivityGrid(1, 7, s_min=1e-6)
        assert grid.snap_down(0, 1e-12) == 0
        assert grid.snap_up(0, 2.0) == 6

    @given(st.floats(1e-6, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_snap_bracket_property(self, sel):
        grid = SelectivityGrid(1, 9, s_min=1e-6)
        lo = grid.snap_down(0, sel)
        hi = grid.snap_up(0, sel)
        assert grid.values[0][lo] <= sel * (1 + 1e-12)
        assert grid.values[0][hi] >= sel * (1 - 1e-12)
        assert hi - lo in (0, 1)


class TestSnapLog:
    """Log-space nearest-point snapping (used by truth discovery and
    completed-spill learning in the row-backed engine)."""

    def test_grid_points_snap_to_themselves(self):
        grid = SelectivityGrid(2, 9, s_min=1e-4)
        for i, value in enumerate(grid.values[1]):
            assert grid.snap_log(1, value) == i

    def test_snaps_to_log_nearest_not_linear_nearest(self):
        grid = SelectivityGrid(1, 5, s_min=1e-4)
        # Just below the geometric midpoint of values[1] and values[2]:
        # linearly closer to values[1]'s neighbourhood either way, but
        # the log metric decides.
        mid = np.sqrt(grid.values[0][1] * grid.values[0][2])
        assert grid.snap_log(0, mid * 0.99) == 1
        assert grid.snap_log(0, mid * 1.01) == 2

    def test_clamps_below_the_grid(self):
        grid = SelectivityGrid(1, 6, s_min=1e-4)
        assert grid.snap_log(0, 1e-12) == 0
        assert grid.snap_log(0, 0.0) == 0

    def test_clamps_above_the_grid(self):
        grid = SelectivityGrid(1, 6, s_min=1e-4)
        assert grid.snap_log(0, 1.0) == 5
        assert grid.snap_log(0, 7.5) == 5
