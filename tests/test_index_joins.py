"""Tests for indexed columns and index nested-loop joins."""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database
from repro.catalog.schema import Catalog, Column, Table
from repro.cost.model import CostModel
from repro.executor.runtime import RowEngine
from repro.optimizer.dp import Optimizer
from repro.plans.nodes import (
    HashJoin,
    IndexNLJoin,
    SeqScan,
    finalize_plan,
)
from repro.plans.pipelines import decompose_pipelines, spill_epp
from repro.query.query import Query, make_filter, make_join


@pytest.fixture(scope="module")
def idx_catalog():
    # The inner (dim) is large: hash-building it is expensive, which is
    # exactly when per-outer-tuple index lookups pay off.
    return Catalog("idx", [
        Table("fact", 200_000, [
            Column("f_id", 200_000),
            Column("f_dim", 100_000),
            Column("f_val", 100, lo=0, hi=100),
        ]),
        Table("dim", 1_000_000, [
            Column("d_id", 1_000_000, indexed=True),
            Column("d_attr", 40, lo=0, hi=40),
        ]),
    ])


@pytest.fixture(scope="module")
def idx_query(idx_catalog):
    return Query(
        "idxq", idx_catalog, ["fact", "dim"],
        [make_join("j", "fact.f_dim", "dim.d_id")],
        [make_filter("f", "fact.f_val", "<", 2),
         make_filter("g", "dim.d_attr", "<", 20)],
        epps=("j",),
    )


class TestNode:
    def test_unary_structure(self):
        node = IndexNLJoin(SeqScan("fact"), ("j",), "dim", "d_id", ("g",))
        assert len(node.children) == 1
        assert node.tables == frozenset(("fact", "dim"))
        assert node.primary_predicate == "j"

    def test_signature_includes_index_spec(self):
        a = IndexNLJoin(SeqScan("fact"), ("j",), "dim", "d_id")
        b = IndexNLJoin(SeqScan("fact"), ("j",), "dim", "other")
        assert a.signature() != b.signature()

    def test_finalize_copies(self):
        plan = finalize_plan(
            IndexNLJoin(SeqScan("fact"), ("j",), "dim", "d_id"))
        assert [n.node_id for n in plan.walk()] == [0, 1]

    def test_pipeline_is_streaming(self):
        plan = finalize_plan(
            IndexNLJoin(SeqScan("fact"), ("j",), "dim", "d_id"))
        pipelines = decompose_pipelines(plan)
        assert len(pipelines) == 1  # no build/inner pipeline at all

    def test_spillable(self):
        plan = finalize_plan(
            IndexNLJoin(SeqScan("fact"), ("j",), "dim", "d_id"))
        name, node = spill_epp(plan, {"j"})
        assert name == "j"
        assert isinstance(node, IndexNLJoin)


class TestCosting:
    def test_cost_positive_and_monotone(self, idx_query):
        model = CostModel(idx_query)
        plan = finalize_plan(IndexNLJoin(
            SeqScan("fact", ("f",)), ("j",), "dim", "d_id", ("g",)))
        lo = model.cost(plan, {"j": 1e-6})
        hi = model.cost(plan, {"j": 1e-2})
        assert 0 < lo < hi

    def test_no_inner_scan_cost(self, idx_query):
        """At negligible selectivity the index join undercuts the hash
        join by (at least) the build cost of the inner."""
        model = CostModel(idx_query)
        index_plan = finalize_plan(IndexNLJoin(
            SeqScan("fact", ("f",)), ("j",), "dim", "d_id", ("g",)))
        hash_plan = finalize_plan(HashJoin(
            SeqScan("fact", ("f",)), SeqScan("dim", ("g",)), ("j",)))
        sel = {"j": 1e-9}
        assert model.cost(index_plan, sel) < model.cost(hash_plan, sel)

    def test_vectorised_matches_scalar(self, idx_query):
        model = CostModel(idx_query)
        plan = finalize_plan(IndexNLJoin(
            SeqScan("fact", ("f",)), ("j",), "dim", "d_id", ("g",)))
        sels = np.geomspace(1e-6, 1, 5)
        vector = model.cost(plan, {"j": sels})
        for i, s in enumerate(sels):
            assert vector[i] == pytest.approx(
                model.cost(plan, {"j": float(s)}))


class TestOptimizerIntegration:
    def test_chosen_for_selective_outer(self, idx_query):
        result = Optimizer(idx_query).optimize({"j": 1e-7})
        kinds = {type(n).__name__ for n in result.plan.walk()}
        assert "IndexNLJoin" in kinds

    def test_not_chosen_for_huge_outer(self, idx_catalog):
        # Without the outer filter and at a fat selectivity, per-tuple
        # lookups plus massive fetches lose to a single hash build.
        query = Query(
            "idxq2", idx_catalog, ["fact", "dim"],
            [make_join("j", "fact.f_dim", "dim.d_id")],
            epps=("j",),
        )
        result = Optimizer(query).optimize({"j": 0.5})
        kinds = {type(n).__name__ for n in result.plan.walk()}
        assert "IndexNLJoin" not in kinds

    def test_unindexed_column_never_index_joined(self, idx_catalog):
        # Swap the join direction: fact.f_dim is not indexed.
        query = Query(
            "idxq3", idx_catalog, ["fact", "dim"],
            [make_join("j", "dim.d_id", "fact.f_dim")],
            [make_filter("g", "dim.d_attr", "<", 1)],
            epps=("j",),
        )
        result = Optimizer(query).optimize({"j": 1e-9})
        for node in result.plan.walk():
            if isinstance(node, IndexNLJoin):
                assert node.inner_table == "dim"


class TestRowExecution:
    def test_matches_hash_join(self, idx_query):
        catalog = idx_query.catalog.scaled(0.01, name="small")
        query = Query(
            "small_q", catalog, ["fact", "dim"],
            [make_join("j", "fact.f_dim", "dim.d_id")],
            [make_filter("f", "fact.f_val", "<", 50),
             make_filter("g", "dim.d_attr", "<", 20)],
            epps=("j",),
        )
        database = generate_database(catalog, rng=4)
        engine = RowEngine(database, query)
        index_plan = finalize_plan(IndexNLJoin(
            SeqScan("fact", ("f",)), ("j",), "dim", "d_id", ("g",)))
        hash_plan = finalize_plan(HashJoin(
            SeqScan("fact", ("f",)), SeqScan("dim", ("g",)), ("j",)))
        assert engine.run(index_plan).row_count == \
            engine.run(hash_plan).row_count

    def test_monitor_reports_primary_selectivity(self, idx_query):
        catalog = idx_query.catalog.scaled(0.01, name="small2")
        query = Query(
            "small_q2", catalog, ["fact", "dim"],
            [make_join("j", "fact.f_dim", "dim.d_id")],
            [make_filter("g", "dim.d_attr", "<", 20)],
            epps=("j",),
        )
        database = generate_database(catalog, rng=4)
        engine = RowEngine(database, query)
        # Filtered index join vs unfiltered: the monitored selectivity
        # must be the join predicate's own, independent of the filter.
        filtered = finalize_plan(IndexNLJoin(
            SeqScan("fact"), ("j",), "dim", "d_id", ("g",)))
        plain = finalize_plan(IndexNLJoin(
            SeqScan("fact"), ("j",), "dim", "d_id"))
        sel_filtered = engine.true_selectivity(filtered, 1)
        sel_plain = engine.true_selectivity(plain, 1)
        assert sel_filtered == pytest.approx(sel_plain)

    def test_budget_abort(self, idx_query):
        catalog = idx_query.catalog.scaled(0.01, name="small3")
        query = Query(
            "small_q3", catalog, ["fact", "dim"],
            [make_join("j", "fact.f_dim", "dim.d_id")],
            epps=("j",),
        )
        database = generate_database(catalog, rng=4)
        engine = RowEngine(database, query)
        plan = finalize_plan(IndexNLJoin(
            SeqScan("fact"), ("j",), "dim", "d_id"))
        full = engine.run(plan)
        partial = engine.run(plan, budget=full.spent / 3)
        assert not partial.completed
        assert partial.row_count < full.row_count
