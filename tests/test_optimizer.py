"""Tests for the DP optimizer: optimality, determinism, constraints."""

from itertools import permutations

import pytest

from repro.common.errors import OptimizerError
from repro.cost.model import CostModel
from repro.optimizer.dp import JOIN_KINDS, Optimizer
from repro.plans.nodes import SeqScan, finalize_plan
from repro.plans.pipelines import spill_epp
from repro.query.query import Query, make_join


def brute_force_left_deep_cost(query, model, assignment):
    """Minimum cost over all left-deep join orders and operator choices."""
    tables = list(query.tables)
    best = None
    for order in permutations(tables):
        plan = _cheapest_for_order(query, model, assignment, order)
        if plan is None:
            continue
        cost = model.cost(plan, assignment)
        if best is None or cost < best:
            best = cost
    return best


def _cheapest_for_order(query, model, assignment, order):
    current = SeqScan(
        order[0], tuple(f.name for f in query.filters_for(order[0]))
    )
    joined = {order[0]}
    for table in order[1:]:
        predicates = query.join_for_tables(joined, {table})
        if not predicates:
            return None  # would need a cross product
        names = tuple(p.name for p in predicates)
        scan = SeqScan(
            table, tuple(f.name for f in query.filters_for(table))
        )
        best = None
        for kind in JOIN_KINDS:
            candidate = finalize_plan(kind(current, scan, names))
            cost = model.cost(candidate, assignment)
            if best is None or cost < best[0]:
                best = (cost, kind)
        current = best[1](current, scan, names)
        joined.add(table)
    return finalize_plan(current)


class TestOptimality:
    @pytest.mark.parametrize("sels", [
        {"j1": 1e-5, "j2": 1e-5},
        {"j1": 1e-2, "j2": 1e-5},
        {"j1": 1e-5, "j2": 1e-2},
        {"j1": 0.5, "j2": 0.5},
        {"j1": 1.0, "j2": 1e-6},
    ])
    def test_matches_brute_force(self, toy_query, sels):
        model = CostModel(toy_query)
        optimizer = Optimizer(toy_query, model)
        result = optimizer.optimize(sels)
        brute = brute_force_left_deep_cost(toy_query, model, sels)
        assert result.cost == pytest.approx(brute, rel=1e-9)

    def test_greedy_per_prefix_is_not_assumed(self, toy_query):
        # The DP cost must never exceed any single hand-built order.
        model = CostModel(toy_query)
        optimizer = Optimizer(toy_query, model)
        sels = {"j1": 1e-3, "j2": 1e-4}
        result = optimizer.optimize(sels)
        hand = _cheapest_for_order(
            toy_query, model, sels, ("fact", "dim1", "dim2", "dim3"))
        assert result.cost <= model.cost(hand, sels) * (1 + 1e-12)

    def test_reported_cost_matches_plan_cost(self, toy_query):
        model = CostModel(toy_query)
        result = Optimizer(toy_query, model).optimize(
            {"j1": 1e-4, "j2": 1e-3})
        assert result.cost == pytest.approx(
            model.cost(result.plan, {"j1": 1e-4, "j2": 1e-3}), rel=1e-9)

    def test_bushy_never_worse(self, toy_query):
        model = CostModel(toy_query)
        sels = {"j1": 1e-3, "j2": 1e-3}
        left_deep = Optimizer(toy_query, model).optimize(sels)
        bushy = Optimizer(toy_query, model, bushy=True).optimize(sels)
        assert bushy.cost <= left_deep.cost * (1 + 1e-12)


class TestDeterminism:
    def test_repeated_calls_identical(self, toy_query):
        optimizer = Optimizer(toy_query)
        sels = {"j1": 1e-4, "j2": 1e-4}
        a = optimizer.optimize(sels)
        b = optimizer.optimize(sels)
        assert a.plan.signature() == b.plan.signature()
        assert a.cost == b.cost


class TestStructure:
    def test_no_cross_products(self, toy_query):
        result = Optimizer(toy_query).optimize({"j1": 1e-4, "j2": 1e-4})
        for node in result.plan.walk():
            if hasattr(node, "predicate_names"):
                assert node.predicate_names

    def test_filters_pushed_to_scans(self, toy_query):
        result = Optimizer(toy_query).optimize({"j1": 1e-4, "j2": 1e-4})
        scans = [n for n in result.plan.walk() if isinstance(n, SeqScan)]
        fact_scan = next(s for s in scans if s.table == "fact")
        assert fact_scan.filter_names == ("f1",)

    def test_all_tables_present(self, toy_query):
        result = Optimizer(toy_query).optimize({"j1": 1e-4, "j2": 1e-4})
        assert result.plan.tables == frozenset(toy_query.tables)

    def test_single_table_query(self, toy_catalog):
        query = Query("single", toy_catalog, ["dim1"], [], [], ())
        result = Optimizer(query).optimize({})
        assert isinstance(result.plan, SeqScan)


class TestConstrainedOptimization:
    @pytest.mark.parametrize("epp", ["j1", "j2"])
    def test_spills_on_requested_epp(self, toy_query, epp):
        optimizer = Optimizer(toy_query)
        result = optimizer.optimize_spilling_on(
            epp, {"j1": 1e-4, "j2": 1e-4})
        choice = spill_epp(result.plan, set(toy_query.epps))
        assert choice is not None
        assert choice[0] == epp

    def test_constrained_never_cheaper_than_free(self, toy_query):
        optimizer = Optimizer(toy_query)
        sels = {"j1": 1e-4, "j2": 1e-3}
        free = optimizer.optimize(sels)
        for epp in toy_query.epps:
            constrained = optimizer.optimize_spilling_on(epp, sels)
            assert constrained.cost >= free.cost * (1 - 1e-12)

    def test_unsatisfiable_returns_none(self, toy_catalog):
        # j2 connects dim2/dim3; forcing it first disconnects fact/dim1
        # unless a cross-free join path exists -- here it does not when
        # the query has only two relations and the epp is elsewhere.
        query = Query(
            "pair", toy_catalog, ["fact", "dim1"],
            [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
            epps=("j1",),
        )
        result = Optimizer(query).optimize_spilling_on("j1", {"j1": 1e-4})
        assert result is not None  # satisfiable here

    def test_errors_without_any_plan(self, toy_catalog):
        query = Query(
            "pair", toy_catalog, ["fact", "dim1"],
            [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
            epps=("j1",),
        )
        optimizer = Optimizer(query)
        # Sanity: the normal path works; OptimizerError is reserved for
        # genuinely impossible enumerations.
        assert optimizer.optimize({"j1": 0.5}).cost > 0
        with pytest.raises(OptimizerError):
            optimizer._result(None)
