"""Tests for the PlanBouquet baseline."""

import pytest

from repro.algorithms.planbouquet import PlanBouquet
from repro.metrics.mso import exhaustive_sweep


class TestGuarantee:
    def test_formula(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours, lam=0.2)
        assert pb.mso_guarantee() == pytest.approx(4 * 1.2 * pb.rho)

    def test_without_reduction(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours, reduce=False)
        assert pb.mso_guarantee() == pytest.approx(4 * pb.rho)
        assert pb.budget_factor() == 1.0

    def test_reduction_shrinks_rho(self, toy_space, toy_contours):
        raw = PlanBouquet(toy_space, toy_contours, reduce=False)
        red = PlanBouquet(toy_space, toy_contours, lam=0.2)
        assert red.rho <= raw.rho


class TestExecution:
    def test_always_completes(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours)
        for index in toy_space.grid.indices():
            result = pb.run(index)
            assert result.executions[-1].completed

    def test_only_last_execution_completes(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours)
        result = pb.run((10, 10))
        assert all(not r.completed for r in result.executions[:-1])

    def test_contours_ascending(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours)
        result = pb.run((12, 4))
        levels = [r.contour for r in result.executions]
        assert levels == sorted(levels)

    def test_budgets_follow_contours(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours, lam=0.2)
        result = pb.run((12, 4))
        for record in result.executions:
            assert record.budget == pytest.approx(
                toy_contours.cost(record.contour) * 1.2)

    def test_completes_by_covering_contour(self, toy_space, toy_contours):
        """The discovery must finish no later than the first contour
        whose budget covers qa (possibly one later under reduction)."""
        pb = PlanBouquet(toy_space, toy_contours)
        for index in [(0, 0), (5, 9), (15, 15)]:
            result = pb.run(index)
            assert result.executions[-1].contour <= \
                toy_contours.contour_of(index)

    def test_origin_is_cheap(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours)
        result = pb.run(toy_space.grid.origin)
        assert result.executions[-1].contour == 0


class TestMSO:
    def test_empirical_within_guarantee(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours)
        sweep = exhaustive_sweep(pb)
        assert sweep.mso <= pb.mso_guarantee() + 1e-6

    def test_unreduced_within_guarantee(self, toy_space, toy_contours):
        pb = PlanBouquet(toy_space, toy_contours, reduce=False)
        sweep = exhaustive_sweep(pb)
        assert sweep.mso <= pb.mso_guarantee() + 1e-6

    def test_q91_within_guarantee(self, q91_2d_space, q91_2d_contours):
        pb = PlanBouquet(q91_2d_space, q91_2d_contours)
        sweep = exhaustive_sweep(pb)
        assert sweep.mso <= pb.mso_guarantee() + 1e-6
        assert sweep.aso >= 1.0
