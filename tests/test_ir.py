"""Unit tests for the relation-algebra IR: nodes, lowering, contracts.

The IR is the backend-facing twin of the plan trees: these tests pin
down the lowering rules, the node invariants and the cross-cutting
contracts (cost metering, monitor semantics, abort observations) that
every backend relies on, independently of any particular substrate.
Backend-conformance tests over hand-built IR live here too, so a new
backend failing the shared contract fails loudly and early.
"""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database
from repro.catalog.schema import Catalog, Column, Table
from repro.common.errors import BudgetExhaustedError, ExecutionError
from repro.ir import (
    CostMeter,
    Filter,
    IndexJoin,
    IRBackend,
    Join,
    JoinMonitor,
    Project,
    Scan,
    SpillTruncate,
    abort_observation,
    lower,
    snapshot_monitors,
)
from repro.ir.backends import BACKENDS, resolve_backend
from repro.ir.contracts import ExecutionResult
from repro.plans.nodes import (
    HashJoin,
    IndexNLJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    finalize_plan,
)
from repro.query.query import Query, make_filter, make_join


@pytest.fixture(scope="module")
def ir_setup():
    catalog = Catalog("ircat", [
        Table("fact", 400, [
            Column("f_id", 400),
            Column("f_d1", 30),
            Column("f_val", 20, lo=0, hi=20),
        ]),
        Table("d1", 60, [
            Column("k1", 30),
            Column("k_val", 10, lo=0, hi=10),
        ]),
    ])
    query = Query(
        "ir_q", catalog,
        ["fact", "d1"],
        [make_join("j1", "fact.f_d1", "d1.k1")],
        [make_filter("f", "fact.f_val", "<", 10),
         make_filter("g", "d1.k_val", "<", 6)],
        epps=("j1",),
    )
    database = generate_database(catalog, rng=3,
                                 skew={"fact.f_d1": 1.2})
    return query, database


def backends(query, database):
    return [cls(database, query) for cls in BACKENDS.values()]


class TestNodes:
    def test_join_rejects_unknown_strategy(self):
        with pytest.raises(ExecutionError, match="strategy"):
            Join(Scan("a"), Scan("b"), ("j",), "quantum")

    def test_join_needs_predicates(self):
        with pytest.raises(ExecutionError, match="predicate"):
            Join(Scan("a"), Scan("b"), (), "hash")

    def test_index_join_needs_predicates(self):
        with pytest.raises(ExecutionError, match="predicate"):
            IndexJoin(Scan("a"), (), "b", "k")

    def test_tables_union_up_the_tree(self):
        tree = SpillTruncate(Project(Filter(
            Join(Scan("a"), Scan("b"), ("j",), "hash"),
            ("f",)), ("a.x",)))
        assert tree.tables == frozenset({"a", "b"})

    def test_walk_is_postorder(self):
        left, right = Scan("a"), Scan("b")
        join = Join(left, right, ("j",), "merge")
        assert list(join.walk()) == [left, right, join]


class TestLowering:
    def plan(self):
        return finalize_plan(HashJoin(
            SeqScan("fact", ("f",)), SeqScan("d1"), ("j1",)))

    def test_scan_fuses_filters_and_keeps_origin(self):
        plan = self.plan()
        root = lower(plan)
        scan = root.children[0]
        assert isinstance(scan, Scan)
        assert scan.table == "fact"
        assert scan.filter_names == ("f",)
        assert scan.origin_id == plan.left.node_id

    @pytest.mark.parametrize("cls,strategy", [
        (HashJoin, "hash"), (MergeJoin, "merge"),
        (NestedLoopJoin, "nestloop"),
    ])
    def test_join_strategy_hints(self, cls, strategy):
        plan = finalize_plan(cls(SeqScan("fact"), SeqScan("d1"), ("j1",)))
        root = lower(plan)
        assert isinstance(root, Join)
        assert root.strategy == strategy
        assert root.origin_id == plan.node_id

    def test_index_join_lowering(self):
        plan = finalize_plan(IndexNLJoin(
            SeqScan("fact"), ("j1",), "d1", "k1", ("g",)))
        root = lower(plan)
        assert isinstance(root, IndexJoin)
        assert (root.inner_table, root.inner_column) == ("d1", "k1")
        assert root.inner_filters == ("g",)
        assert root.origin_id == plan.node_id

    def test_spill_truncates_above_the_node(self):
        plan = self.plan()
        scan_id = plan.left.node_id
        root = lower(plan, spill_node_id=scan_id)
        assert isinstance(root, SpillTruncate)
        assert root.origin_id == scan_id
        assert isinstance(root.child, Scan)

    def test_unknown_spill_node_rejected(self):
        with pytest.raises(ExecutionError, match="no node"):
            lower(self.plan(), spill_node_id=999)


class TestCostMeter:
    def test_unbudgeted_accumulates(self):
        meter = CostMeter()
        meter.charge(5.0)
        meter.charge(1e9)
        assert meter.spent == pytest.approx(5.0 + 1e9)

    def test_raises_only_past_the_budget(self):
        meter = CostMeter(budget=2.0)
        meter.charge(2.0)  # exactly at budget: fine
        with pytest.raises(BudgetExhaustedError) as info:
            meter.charge(0.5)
        assert info.value.spent == pytest.approx(2.5)

    def test_observer_payload_rides_the_error(self):
        meter = CostMeter(budget=1.0, observer=lambda: {4: (1, 2, 3)})
        with pytest.raises(BudgetExhaustedError) as info:
            meter.charge(3.0)
        assert info.value.observed == {4: (1, 2, 3)}


class TestJoinMonitor:
    def test_selectivity_needs_both_done_flags(self):
        monitor = JoinMonitor()
        monitor.left_rows = 10
        monitor.right_rows = 10
        monitor.out_rows = 5
        for left, right in ((False, False), (True, False), (False, True)):
            monitor.left_done, monitor.right_done = left, right
            with pytest.raises(ExecutionError, match="lower_bound"):
                monitor.selectivity
        monitor.left_done = monitor.right_done = True
        assert monitor.selectivity == pytest.approx(0.05)

    def test_lower_bound_is_the_partial_api(self):
        monitor = JoinMonitor()
        monitor.out_rows = 5
        assert monitor.lower_bound(100, 100) == pytest.approx(5e-4)
        assert monitor.lower_bound(0, 100) == 0.0


class TestAbortObservation:
    def test_prefers_the_abort_snapshot(self):
        monitor = JoinMonitor()
        monitor.left_rows = 99
        result = ExecutionResult(False, 0, 1.0, {7: monitor},
                                 observed={7: (1, 2, 3)})
        assert abort_observation(result, 7) == (1, 2, 3)

    def test_falls_back_to_the_live_monitor(self):
        monitor = JoinMonitor()
        monitor.left_rows, monitor.right_rows, monitor.out_rows = 4, 5, 6
        result = ExecutionResult(False, 0, 1.0, {7: monitor},
                                 observed=None)
        assert abort_observation(result, 7) == (4, 5, 6)

    def test_none_when_nothing_was_learnt(self):
        result = ExecutionResult(False, 0, 1.0, {}, observed=None)
        assert abort_observation(result, 7) is None

    def test_snapshot_monitors_copies_counters(self):
        monitor = JoinMonitor()
        observe = snapshot_monitors({3: monitor})
        monitor.out_rows = 9
        assert observe() == {3: (0, 0, 9)}


class TestBackendRegistry:
    def test_all_three_substrates_registered(self):
        assert set(BACKENDS) == {"native", "vectorized", "sqlite"}

    def test_resolve_unknown_backend(self):
        with pytest.raises(ExecutionError, match="native"):
            resolve_backend("postgres")

    def test_protocol_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            IRBackend().run(None)


class TestBackendConformance:
    """Every registered backend over the same hand-built IR trees."""

    def test_scan_with_filter(self, ir_setup):
        query, database = ir_setup
        expected = int(np.count_nonzero(database["fact"]["f_val"] < 10))
        for backend in backends(query, database):
            result = backend.run(Scan("fact", ("f",)))
            assert result.completed, backend.backend_name
            assert result.row_count == expected, backend.backend_name

    def test_standalone_filter_node(self, ir_setup):
        query, database = ir_setup
        expected = int(np.count_nonzero(database["fact"]["f_val"] < 10))
        tree = Filter(Scan("fact"), ("f",))
        for backend in backends(query, database):
            result = backend.run(tree)
            assert result.row_count == expected, backend.backend_name

    def test_project_restricts_columns(self, ir_setup):
        query, database = ir_setup
        tree = Project(Scan("fact", ("f",)), ("fact.f_id",))
        for backend in backends(query, database):
            result = backend.run(tree, keep_rows=True)
            assert result.rows, backend.backend_name
            assert all(set(row) == {"fact.f_id"} for row in result.rows)

    @pytest.mark.parametrize("strategy", ["hash", "merge", "nestloop"])
    def test_join_strategies_agree_with_numpy(self, ir_setup, strategy):
        query, database = ir_setup
        left = database["fact"]["f_d1"]
        right = database["d1"]["k1"]
        expected = int(sum(
            np.count_nonzero(left == v) * np.count_nonzero(right == v)
            for v in np.unique(left)))
        tree = Join(Scan("fact"), Scan("d1"), ("j1",), strategy,
                    origin_id=1)
        for backend in backends(query, database):
            result = backend.run(tree)
            name = backend.backend_name
            assert result.row_count == expected, name
            monitor = result.monitors[1]
            assert monitor.out_rows == expected, name
            assert monitor.left_done and monitor.right_done, name
            assert monitor.selectivity == pytest.approx(
                expected / (len(left) * len(right)))

    def test_index_join_monitor_counts_fetched_rows(self, ir_setup):
        query, database = ir_setup
        left = database["fact"]["f_d1"]
        right = database["d1"]["k1"]
        inner_val = database["d1"]["k_val"]
        fetched = int(sum(
            np.count_nonzero(left == v) * np.count_nonzero(right == v)
            for v in np.unique(left)))
        emitted = int(sum(
            np.count_nonzero(left == v)
            * np.count_nonzero((right == v) & (inner_val < 6))
            for v in np.unique(left)))
        tree = IndexJoin(Scan("fact"), ("j1",), "d1", "k1", ("g",),
                         origin_id=2)
        for backend in backends(query, database):
            result = backend.run(tree)
            name = backend.backend_name
            assert result.row_count == emitted, name
            monitor = result.monitors[2]
            # The contract: primary-predicate matches, undiluted by the
            # inner filter.
            assert monitor.out_rows == fetched, name
            assert monitor.right_rows == len(right), name

    def test_spill_truncate_counts_and_discards(self, ir_setup):
        query, database = ir_setup
        join = Join(Scan("fact"), Scan("d1"), ("j1",), "hash",
                    origin_id=5)
        tree = SpillTruncate(join, origin_id=5)
        full = {}
        for backend in backends(query, database):
            result = backend.run(tree)
            full[backend.backend_name] = result.row_count
            assert result.completed
        assert len(set(full.values())) == 1, full

    def test_unknown_table_is_an_execution_error(self, ir_setup):
        query, database = ir_setup
        for backend in backends(query, database):
            with pytest.raises(ExecutionError, match="atlantis"):
                backend.run(Scan("atlantis"))

    def test_true_selectivity_shared_helper(self, ir_setup):
        query, database = ir_setup
        plan = finalize_plan(HashJoin(
            SeqScan("fact"), SeqScan("d1"), ("j1",)))
        values = {
            backend.backend_name: backend.true_selectivity(
                plan, plan.node_id)
            for backend in backends(query, database)
        }
        assert len({round(v, 12) for v in values.values()}) == 1, values
