"""Edge cases across the discovery stack."""

import numpy as np
import pytest

from repro.algorithms.alignedbound import AlignedBound
from repro.algorithms.planbouquet import PlanBouquet
from repro.algorithms.spillbound import SpillBound
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.metrics.mso import exhaustive_sweep
from repro.query.query import Query, make_join


class TestOneDimensionalQueries:
    """D = 1: SpillBound degenerates to PlanBouquet immediately."""

    @pytest.fixture(scope="class")
    def space_1d(self, toy_catalog):
        query = Query(
            "toy_1d", toy_catalog, ["fact", "dim1"],
            [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
            epps=("j1",),
        )
        space = ExplorationSpace(query, resolution=32, s_min=1e-5)
        return space.build(mode="exact")

    def test_spillbound_runs_regular_only(self, space_1d):
        sb = SpillBound(space_1d, ContourSet(space_1d))
        result = sb.run((20,))
        assert all(r.mode == "regular" for r in result.executions)

    def test_bound_is_four(self, space_1d):
        # D^2 + 3D = 4 at D = 1; the 1-D PlanBouquet phase achieves it.
        sb = SpillBound(space_1d, ContourSet(space_1d))
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= 4.0 + 1e-6

    def test_alignedbound_matches_spillbound(self, space_1d):
        contours = ContourSet(space_1d)
        sb_sweep = exhaustive_sweep(SpillBound(space_1d, contours))
        ab_sweep = exhaustive_sweep(AlignedBound(space_1d, contours))
        assert np.allclose(sb_sweep.sub_optimalities,
                           ab_sweep.sub_optimalities)


class TestCornerTruths:
    def test_origin_is_cheap_everywhere(self, toy_space, toy_contours):
        """At the origin every algorithm completes on the first
        contour with small absolute expenditure."""
        for cls in (PlanBouquet, SpillBound, AlignedBound):
            result = cls(toy_space, toy_contours).run(
                toy_space.grid.origin)
            assert result.executions[-1].contour == 0

    def test_terminus_completes(self, toy_space, toy_contours):
        for cls in (PlanBouquet, SpillBound, AlignedBound):
            result = cls(toy_space, toy_contours).run(
                toy_space.grid.terminus)
            assert result.executions[-1].completed

    def test_axis_edges(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        last = toy_space.grid.shape[0] - 1
        for qa in [(0, last), (last, 0)]:
            result = sb.run(qa)
            assert result.sub_optimality <= sb.mso_guarantee() + 1e-6


class TestDegenerateGeometry:
    def test_single_plan_space(self, toy_catalog):
        """A 2-relation query whose POSP may collapse to one plan."""
        query = Query(
            "pairq", toy_catalog, ["fact", "dim1"],
            [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
            epps=("j1",),
        )
        space = ExplorationSpace(query, resolution=8, s_min=1e-3)
        space.build(mode="exact")
        sb = SpillBound(space, ContourSet(space))
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= 4.0 + 1e-6

    def test_tiny_grid(self, toy_query):
        """Resolution 2 (corners only) still works end to end."""
        space = ExplorationSpace(toy_query, resolution=2, s_min=1e-4)
        space.build(mode="exact")
        sb = SpillBound(space, ContourSet(space))
        for index in space.grid.indices():
            result = sb.run(index)
            assert result.executions[-1].completed

    def test_narrow_selectivity_range(self, toy_query):
        """An s_min close to 1 yields very few contours."""
        space = ExplorationSpace(toy_query, resolution=6, s_min=0.5)
        space.build(mode="exact")
        contours = ContourSet(space)
        assert 1 <= len(contours) <= 6
        sb = SpillBound(space, contours)
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= sb.mso_guarantee() + 1e-6


class TestBudgetBoundaries:
    def test_exact_budget_is_inclusive(self, toy_space):
        from repro.engine.simulated import SimulatedEngine
        engine = SimulatedEngine(toy_space, (4, 4))
        plan = toy_space.optimal_plan((4, 4))
        cost = toy_space.optimal_cost((4, 4))
        assert engine.execute(plan, cost).completed
        assert not engine.execute(plan, cost * (1 - 1e-6)).completed

    def test_zero_learning_lower_bound(self, toy_space):
        """A spill budget below the subtree's minimum learns index -1
        (nothing certified), and the algorithm treats it as qrun 0."""
        from repro.engine.simulated import SimulatedEngine
        engine = SimulatedEngine(toy_space, (10, 10))
        plan = toy_space.optimal_plan((10, 10))
        epp, node = plan.spill_target(set(toy_space.query.epps))
        profile = engine._subtree_profile(plan, epp, node)
        outcome = engine.execute_spill(plan, epp, node,
                                       float(profile[0]) * 0.5)
        assert not outcome.completed
        assert outcome.learned_index == -1
