"""Tests for the serving daemon: protocol, admission, coalescing and
the live daemon's degradation ladder, deadline propagation and drain."""

import asyncio
import os
import threading
import time

import pytest

from repro.serve import (
    AdmissionController,
    Coalescer,
    ProtocolError,
    Request,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    TenantBudgets,
    TokenBucket,
    decode_message,
    encode_message,
)

# ----------------------------------------------------------------------
# protocol


class TestProtocol:
    def test_round_trip(self):
        payload = {"op": "run", "id": 7, "query": "2D_Q91"}
        assert decode_message(encode_message(payload)) == payload

    def test_rejects_junk(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_message(b"[1,2]\n")
        with pytest.raises(ProtocolError):
            decode_message(b"\n")

    def test_request_validation(self):
        request = Request.parse(
            {"op": "run", "query": "2D_Q91", "qa": [3, 4],
             "deadline_ms": 250, "tenant": "acme"})
        assert request.qa == (3, 4)
        assert request.deadline_ms == 250.0
        assert request.algorithm == "spillbound"

    @pytest.mark.parametrize("payload", [
        {"op": "explode"},
        {"op": "run"},                                  # missing query
        {"op": "run", "query": "2D_Q91", "bogus": 1},
        {"op": "run", "query": "2D_Q91", "tenant": ""},
        {"op": "run", "query": "2D_Q91", "resolution": 1},
        {"op": "run", "query": "2D_Q91", "qa": ["a"]},
        {"op": "run", "query": "2D_Q91", "deadline_ms": -1},
    ])
    def test_bad_requests_refused(self, payload):
        with pytest.raises(ProtocolError):
            Request.parse(payload)

    def test_control_ops_need_no_query(self):
        assert Request.parse({"op": "health"}).op == "health"
        assert Request.parse({"op": "stats"}).op == "stats"


# ----------------------------------------------------------------------
# admission


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(2.0, 1.0, clock=lambda: clock[0])
        assert bucket.try_acquire() == (True, None)
        assert bucket.try_acquire() == (True, None)
        refused, retry = bucket.try_acquire()
        assert not refused and retry == pytest.approx(1.0)
        clock[0] = 1.0
        assert bucket.try_acquire() == (True, None)

    def test_zero_rate_is_a_hard_quota(self):
        bucket = TokenBucket(1.0, 0.0, clock=lambda: 0.0)
        assert bucket.try_acquire() == (True, None)
        refused, retry = bucket.try_acquire()
        assert not refused and retry == float("inf")

    def test_tenants_are_isolated(self):
        clock = [0.0]
        budgets = TenantBudgets(1.0, 1.0, clock=lambda: clock[0])
        assert budgets.try_acquire("a") == (True, None)
        assert budgets.try_acquire("a")[0] is False
        assert budgets.try_acquire("b") == (True, None)
        assert len(budgets) == 2


class TestAdmissionController:
    def _controller(self, max_inflight=2, max_queue=2):
        budgets = TenantBudgets(100.0, 100.0, clock=lambda: 0.0)
        return AdmissionController(budgets, max_inflight=max_inflight,
                                   max_queue=max_queue)

    def test_slots_then_queue_then_shed(self):
        ctrl = self._controller()
        first = [ctrl.admit("t") for _ in range(2)]
        assert all(d.admitted and not d.queued for d in first)
        queued = [ctrl.admit("t") for _ in range(2)]
        assert all(d.admitted and d.queued for d in queued)
        shed = ctrl.admit("t")
        assert not shed.admitted
        assert shed.reason == "queue-full"
        assert 0 < shed.retry_after <= ctrl.retry_cap

    def test_tenant_budget_shed_names_reason(self):
        budgets = TenantBudgets(1.0, 1.0, clock=lambda: 0.0)
        ctrl = AdmissionController(budgets, max_inflight=4)
        assert ctrl.admit("t").admitted
        shed = ctrl.admit("t")
        assert shed.reason == "tenant-budget"
        assert shed.retry_after == pytest.approx(1.0)

    def test_release_and_promote_keep_counts_sane(self):
        ctrl = self._controller()
        ctrl.admit("t")
        ctrl.admit("t")
        assert ctrl.admit("t").queued
        ctrl.release(0.5)
        ctrl.promote()
        snap = ctrl.snapshot()
        assert snap["inflight"] == 2
        assert snap["queued"] == 0
        assert snap["service_ema_ms"] == pytest.approx(180.0)

    def test_pressure_tracks_queue_occupancy(self):
        ctrl = self._controller(max_inflight=1, max_queue=4)
        assert ctrl.pressure() == 0.0
        ctrl.admit("t")
        ctrl.admit("t")
        ctrl.admit("t")
        assert ctrl.pressure() == pytest.approx(0.5)


# ----------------------------------------------------------------------
# coalescing


def _run(coro):
    return asyncio.run(coro)


class TestCoalescer:
    def test_identical_requests_run_once(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []

            def factory():
                async def work():
                    calls.append(1)
                    await asyncio.sleep(0.02)
                    return "answer"
                return work()

            results = await asyncio.gather(*[
                coalescer.run("k", factory) for _ in range(8)])
            return coalescer, calls, results

        coalescer, calls, results = _run(scenario())
        assert len(calls) == 1
        assert all(value == "answer" for value, _ in results)
        assert sum(1 for _, coalesced in results if coalesced) == 7
        assert coalescer.stats.dispatched == 1
        assert coalescer.stats.coalesced == 7
        assert len(coalescer) == 0

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            coalescer = Coalescer()

            def factory(key):
                async def work():
                    await asyncio.sleep(0.01)
                    return key
                return work

            results = await asyncio.gather(
                coalescer.run("a", factory("a")),
                coalescer.run("b", factory("b")))
            return coalescer, results

        coalescer, results = _run(scenario())
        assert [value for value, _ in results] == ["a", "b"]
        assert coalescer.stats.coalesced == 0

    def test_leader_crash_redispatches_for_followers(self):
        """A follower must not receive the leader's exception verbatim:
        it re-dispatches its own attempt (which here succeeds)."""
        async def scenario():
            coalescer = Coalescer(redispatch=1)
            attempts = []

            def factory():
                async def work():
                    attempts.append(1)
                    await asyncio.sleep(0.02)
                    if len(attempts) == 1:
                        raise RuntimeError("leader-only fault")
                    return "recovered"
                return work()

            leader = asyncio.ensure_future(
                coalescer.run("k", factory))
            await asyncio.sleep(0.005)  # follower joins mid-flight
            follower = asyncio.ensure_future(
                coalescer.run("k", factory))
            leader_exc = None
            try:
                await leader
            except RuntimeError as exc:
                leader_exc = exc
            value, coalesced = await follower
            return coalescer, attempts, leader_exc, value

        coalescer, attempts, leader_exc, value = _run(scenario())
        # The leader's own request genuinely failed ...
        assert str(leader_exc) == "leader-only fault"
        # ... but the follower got a fresh dispatch, not that error.
        assert value == "recovered"
        assert len(attempts) == 2
        assert coalescer.stats.redispatched == 1
        assert coalescer.stats.failures == 1

    def test_redispatch_budget_bounds_retries(self):
        async def scenario():
            coalescer = Coalescer(redispatch=1)

            def factory():
                async def work():
                    await asyncio.sleep(0.01)
                    raise RuntimeError("always down")
                return work()

            leader = asyncio.ensure_future(coalescer.run("k", factory))
            await asyncio.sleep(0.002)
            follower = asyncio.ensure_future(
                coalescer.run("k", factory))
            outcomes = await asyncio.gather(leader, follower,
                                            return_exceptions=True)
            return coalescer, outcomes

        coalescer, outcomes = _run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert coalescer.stats.dispatched == 2  # leader + one retry

    def test_follower_cancellation_leaves_computation_running(self):
        async def scenario():
            coalescer = Coalescer()
            finished = []

            def factory():
                async def work():
                    await asyncio.sleep(0.05)
                    finished.append(1)
                    return "done"
                return work()

            leader = asyncio.ensure_future(coalescer.run("k", factory))
            await asyncio.sleep(0.005)
            follower = asyncio.ensure_future(
                coalescer.run("k", factory))
            await asyncio.sleep(0.005)
            follower.cancel()
            with pytest.raises(asyncio.CancelledError):
                await follower
            value, coalesced = await leader
            return value, finished

        value, finished = _run(scenario())
        assert value == "done"
        assert finished == [1]

    def test_leader_cancellation_leaves_computation_running(self):
        """Even the *dispatching* request disconnecting must not kill
        the shared computation -- the coalescer owns the task."""
        async def scenario():
            coalescer = Coalescer()
            finished = []

            def factory():
                async def work():
                    await asyncio.sleep(0.05)
                    finished.append(1)
                    return "done"
                return work()

            leader = asyncio.ensure_future(coalescer.run("k", factory))
            await asyncio.sleep(0.005)
            follower = asyncio.ensure_future(
                coalescer.run("k", factory))
            await asyncio.sleep(0.005)
            leader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leader
            value, coalesced = await follower
            return value, coalesced, finished

        value, coalesced, finished = _run(scenario())
        assert value == "done"
        assert coalesced is True
        assert finished == [1]


# ----------------------------------------------------------------------
# the live daemon


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One daemon on a unix socket, shared by the integration tests.

    Generous tenant budgets; tests that exercise shedding use their
    own dedicated tenants (budgets are per-tenant, so they cannot
    starve the other tests).
    """
    sock = str(tmp_path_factory.mktemp("serve") / "test.sock")
    config = ServeConfig(
        path=sock, max_inflight=2, max_queue=8,
        tenant_capacity=1000.0, tenant_rate=1000.0,
        default_deadline_ms=60000.0, degraded_resolution=5,
        native_floor_ms=50.0, cold_floor_ms=400.0)
    server = ServerThread(config=config)
    server.start()
    try:
        yield server
    finally:
        if server._thread.is_alive():
            server.stop()


@pytest.fixture()
def client(daemon):
    with ServeClient(path=daemon.daemon.config.path) as c:
        yield c


class TestDaemonIntegration:
    def test_health_and_stats(self, client):
        health = client.health()["result"]
        assert health["ok"] and health["protocol"] == 1
        stats = client.stats()
        assert "metrics" in stats and "coalescing" in stats
        assert stats["admission"]["max_inflight"] == 2

    def test_run_and_cached_rerun(self, client):
        first = client.run("3D_Q15", resolution=4, tenant="basic")
        assert first["ok"]
        assert first["served"] in ("full", "cached")
        assert first["result"]["algorithm"] == "spillbound"
        assert first["result"]["sub_optimality"] >= 1.0
        again = client.run("3D_Q15", resolution=4, tenant="basic")
        assert again["served"] == "cached"
        assert again["degraded_reasons"] == []

    def test_warm_populates_the_cache(self, client):
        warmed = client.warm("3D_Q15", resolution=6, tenant="basic")
        assert warmed["ok"] and warmed["result"]["contours"] > 0
        run = client.run("3D_Q15", resolution=6, tenant="basic")
        assert run["served"] == "cached"

    def test_bad_request_is_refused_not_fatal(self, client):
        response = client.request({"op": "run"})
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        # The connection survives a bad line.
        assert client.health()["result"]["ok"]

    def test_unknown_query_is_an_internal_error(self, client):
        response = client.request(
            {"op": "run", "query": "99D_NOPE", "id": 1})
        assert response["ok"] is False
        assert response["error"] == "internal"

    def test_deadline_ladder_native_fallback(self, client):
        """A cold artifact and a budget below the native floor: the
        ladder answers with the native optimizer, naming the rung."""
        response = client.run("2D_Q91", resolution=24, tenant="dl",
                              deadline_ms=30, rng=888)
        assert response["ok"]
        assert response["served"] == "native"
        assert response["result"]["algorithm"] == "native"
        assert "native-deadline" in response["degraded_reasons"]

    def test_warm_artifact_beats_the_native_rung(self, client):
        """With the artifact warm a tight budget still gets real
        discovery: a cached run costs milliseconds, so the ladder
        serves ``cached`` instead of degrading to native."""
        client.warm("3D_Q15", resolution=4, tenant="dl")
        response = client.run("3D_Q15", resolution=4, tenant="dl",
                              deadline_ms=45)
        assert response["ok"]
        assert response["served"] == "cached"
        assert response["result"]["algorithm"] == "spillbound"

    def test_deadline_ladder_lowres_rung(self, client):
        """A cold build the deadline cannot afford (200ms < cold floor
        400ms) degrades resolution instead of shedding."""
        response = client.run("2D_Q91", resolution=24, tenant="dl",
                              deadline_ms=200, rng=777)
        assert response["ok"]
        assert response["served"] in ("lowres", "cached")
        assert any(r.startswith("lowres-deadline")
                   for r in response["degraded_reasons"])
        assert response["result"]["resolution"] == 5

    def test_zero_deadline_is_shed(self, client):
        with pytest.raises(ServeError) as exc:
            client.run("3D_Q15", resolution=4, tenant="dl",
                       deadline_ms=0)
        assert exc.value.code == "overloaded"
        assert exc.value.retry_after_ms is not None

    def test_concurrent_identical_requests_coalesce(self, daemon):
        """The tentpole proof: N identical concurrent requests perform
        exactly one discovery computation."""
        sock = daemon.daemon.config.path
        before = daemon.daemon.coalescer.stats.snapshot()
        n = 6
        responses = [None] * n
        barrier = threading.Barrier(n)

        def fire(i):
            with ServeClient(path=sock, timeout=60.0) as c:
                barrier.wait(10)
                responses[i] = c.run(
                    "2D_Q91", resolution=16, tenant="co-%d" % i,
                    rng=4242, deadline_ms=55000)

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(90)
        assert all(r is not None and r["ok"] for r in responses)
        sub_opts = set(r["result"]["sub_optimality"]
                       for r in responses)
        assert len(sub_opts) == 1  # bit-identical shared answer
        after = daemon.daemon.coalescer.stats.snapshot()
        dispatched = after["dispatched"] - before["dispatched"]
        coalesced = after["coalesced"] - before["coalesced"]
        assert dispatched == 1
        assert coalesced == n - 1
        assert sum(1 for r in responses if r["coalesced"]) == n - 1

    def test_stats_expose_every_subsystem(self, client):
        stats = client.stats()
        assert stats["metrics"]["counters"]["serve.requests"] > 0
        assert "service_ema_ms" in stats["admission"]
        assert "entries" in stats["cache"]
        assert isinstance(stats["breakers"], dict)
        assert isinstance(stats["tenants"], dict)


class TestDaemonOverload:
    """A dedicated stingy daemon: tiny budgets, one slot, no queue."""

    @pytest.fixture()
    def stingy(self, tmp_path):
        sock = str(tmp_path / "stingy.sock")
        config = ServeConfig(
            path=sock, max_inflight=1, max_queue=0,
            tenant_capacity=2.0, tenant_rate=0.1,
            default_deadline_ms=60000.0)
        server = ServerThread(config=config)
        server.start()
        try:
            yield server
        finally:
            if server._thread.is_alive():
                server.stop()

    def test_tenant_budget_shed_carries_retry_hint(self, stingy):
        with ServeClient(path=stingy.daemon.config.path,
                         raise_errors=False) as c:
            responses = [c.run("3D_Q15", resolution=4, tenant="miser")
                         for _ in range(3)]
        assert responses[0]["ok"] and responses[1]["ok"]
        shed = responses[2]
        assert shed["ok"] is False
        assert shed["error"] == "overloaded"
        assert "tenant-budget" in shed["message"]
        # Refill rate 0.1/s: the hint says when one token lands (capped
        # by the controller's 5s ceiling).
        assert shed["retry_after_ms"] > 0

    def test_queue_full_shed_carries_retry_hint(self, stingy):
        """One slot, no queue: an overlapping request from a *different*
        tenant (own budget) sheds with ``queue-full``."""
        sock = stingy.daemon.config.path
        holder_started = threading.Event()
        holder_response = []

        def hold():
            with ServeClient(path=sock, timeout=60.0) as c:
                holder_started.set()
                holder_response.append(c.run(
                    "3D_Q15", resolution=4, tenant="slow",
                    engine="simulated+latency(ms=200)", rng=31))

        t = threading.Thread(target=hold)
        t.start()
        holder_started.wait(5)
        time.sleep(0.3)  # the slow run occupies the only slot
        with ServeClient(path=sock, raise_errors=False) as c:
            shed = c.run("3D_Q15", resolution=4, tenant="other",
                         rng=32)
        t.join(60)
        assert holder_response and holder_response[0]["ok"]
        if shed["ok"]:
            pytest.skip("slow run finished before the overlap landed")
        assert shed["error"] == "overloaded"
        assert "queue-full" in shed["message"]
        assert shed["retry_after_ms"] >= 0


class TestDaemonDrain:
    def test_sigterm_style_drain(self, tmp_path):
        sock = str(tmp_path / "drain.sock")
        config = ServeConfig(path=sock, max_inflight=2,
                             tenant_capacity=100.0, tenant_rate=100.0)
        server = ServerThread(config=config)
        server.start()
        with ServeClient(path=sock, raise_errors=False) as c:
            assert c.run("3D_Q15", resolution=4)["ok"]
            # Trigger the drain from outside the loop, as a signal
            # handler would, while the connection stays open.
            server._loop.call_soon_threadsafe(
                server.daemon.initiate_drain)
            time.sleep(0.1)
            refused = c.run("3D_Q15", resolution=4)
            assert refused["ok"] is False
            assert refused["error"] == "draining"
            assert refused["retry_after_ms"] >= 0
            # Control plane still answers while draining.
            assert c.health()["result"]["draining"] is True
        server._thread.join(15)
        assert not server._thread.is_alive()
        assert not os.path.exists(sock)
