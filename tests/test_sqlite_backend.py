"""Tests for the sqlite execution backend (SQL-compiled IR).

The backend's promise is *exact* agreement with the tuple-at-a-time
interpreter on everything discovery consumes: spend of completed runs,
row counts, monitor counters and spill semantics -- plus the sqlite-only
machinery (budget verdicts from the closed-form model, the
progress-handler runaway guard).
"""

import pytest

from repro.catalog.datagen import generate_database
from repro.catalog.schema import Catalog, Column, Table
from repro.common.errors import ExecutionError
from repro.ir import sqlite_backend
from repro.ir.backends import NativeIterBackend
from repro.ir.costing import merge_iterations
from repro.ir.sqlite_backend import SqliteBackend
from repro.plans.nodes import (
    HashJoin,
    IndexNLJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    finalize_plan,
)
from repro.query.query import Query, make_filter, make_join


@pytest.fixture(scope="module")
def sqlite_setup():
    catalog = Catalog("sqlcat", [
        Table("fact", 500, [
            Column("f_id", 500),
            Column("f_d1", 40),
            Column("f_d2", 25),
            Column("f_val", 20, lo=0, hi=20),
        ]),
        Table("d1", 70, [
            Column("k1", 40),
            Column("k_val", 12, lo=0, hi=12),
        ]),
        Table("d2", 50, [Column("k2", 25)]),
    ])
    query = Query(
        "sqlite_q", catalog,
        ["fact", "d1", "d2"],
        [
            make_join("j1", "fact.f_d1", "d1.k1"),
            make_join("j2", "fact.f_d2", "d2.k2"),
        ],
        [make_filter("f", "fact.f_val", "<", 11),
         make_filter("g", "d1.k_val", "<", 7)],
        epps=("j1", "j2"),
    )
    database = generate_database(
        catalog, rng=17, skew={"fact.f_d1": 1.4, "d1.k1": 0.8})
    return query, database


def plans(query):
    """One finalised plan per join strategy (incl. a bushy residual)."""
    del query  # plans reference predicates by name only
    return {
        "hash-hash": finalize_plan(HashJoin(
            HashJoin(SeqScan("fact", ("f",)), SeqScan("d1", ("g",)),
                     ("j1",)),
            SeqScan("d2"), ("j2",))),
        "merge-nl": finalize_plan(NestedLoopJoin(
            MergeJoin(SeqScan("fact", ("f",)), SeqScan("d1"), ("j1",)),
            SeqScan("d2"), ("j2",))),
        "index-outer": finalize_plan(HashJoin(
            IndexNLJoin(SeqScan("fact", ("f",)), ("j1",), "d1", "k1",
                        ("g",)),
            SeqScan("d2"), ("j2",))),
        "merge-merge": finalize_plan(MergeJoin(
            MergeJoin(SeqScan("fact",), SeqScan("d1"), ("j1",)),
            SeqScan("d2"), ("j2",))),
    }


class TestExactAgreementWithNative:
    def test_unbudgeted_spend_rows_and_monitors(self, sqlite_setup):
        query, database = sqlite_setup
        native = NativeIterBackend(database, query)
        sqlite = SqliteBackend(database, query)
        for label, plan in plans(query).items():
            a = native.run(plan, budget=None)
            b = sqlite.run(plan, budget=None)
            assert b.row_count == a.row_count, label
            assert b.spent == pytest.approx(a.spent, rel=1e-9), label
            assert set(b.monitors) == set(a.monitors), label
            for nid, monitor in a.monitors.items():
                other = b.monitors[nid]
                assert (other.left_rows, other.right_rows,
                        other.out_rows) == \
                    (monitor.left_rows, monitor.right_rows,
                     monitor.out_rows), (label, nid)

    def test_keep_rows_produces_identical_row_sets(self, sqlite_setup):
        query, database = sqlite_setup
        native = NativeIterBackend(database, query)
        sqlite = SqliteBackend(database, query)
        plan = plans(query)["hash-hash"]
        a = native.run(plan, budget=None, keep_rows=True)
        b = sqlite.run(plan, budget=None, keep_rows=True)

        def canon(rows):
            return sorted(
                tuple(sorted((k, int(v)) for k, v in row.items()))
                for row in rows)
        assert canon(b.rows) == canon(a.rows)

    def test_spill_truncation_matches(self, sqlite_setup):
        query, database = sqlite_setup
        native = NativeIterBackend(database, query)
        sqlite = SqliteBackend(database, query)
        plan = plans(query)["hash-hash"]
        spill_id = plan.left.node_id  # the inner join
        a = native.run(plan, budget=None, spill_node_id=spill_id)
        b = sqlite.run(plan, budget=None, spill_node_id=spill_id)
        assert b.row_count == a.row_count
        assert b.spent == pytest.approx(a.spent, rel=1e-9)
        # Nothing above the truncation point executed: only the spilled
        # join has a monitor.
        assert set(b.monitors) == set(a.monitors) == {spill_id}


class TestBudgetVerdicts:
    def test_over_budget_reports_budget_as_spend(self, sqlite_setup):
        query, database = sqlite_setup
        sqlite = SqliteBackend(database, query)
        plan = plans(query)["hash-hash"]
        full = sqlite.run(plan, budget=None).spent
        partial = sqlite.run(plan, budget=full * 0.5)
        assert not partial.completed
        assert partial.spent == pytest.approx(full * 0.5)
        assert partial.row_count == 0

    def test_failed_run_still_carries_full_observations(self, sqlite_setup):
        """Whole-query abort granularity: by the time sqlite reports,
        counts are complete, so monitors are done and the abort snapshot
        is exact (sound as a lower bound)."""
        query, database = sqlite_setup
        sqlite = SqliteBackend(database, query)
        plan = plans(query)["hash-hash"]
        full = sqlite.run(plan, budget=None)
        partial = sqlite.run(plan, budget=full.spent * 0.5)
        assert partial.observed is not None
        for nid, monitor in full.monitors.items():
            assert partial.observed[nid] == (
                monitor.left_rows, monitor.right_rows, monitor.out_rows)
            assert partial.monitors[nid].left_done
            assert partial.monitors[nid].right_done

    def test_within_budget_completes(self, sqlite_setup):
        query, database = sqlite_setup
        sqlite = SqliteBackend(database, query)
        plan = plans(query)["merge-nl"]
        full = sqlite.run(plan, budget=None)
        again = sqlite.run(plan, budget=full.spent * 1.01)
        assert again.completed
        assert again.spent == pytest.approx(full.spent)

    def test_progress_guard_interrupts_runaway_statements(
            self, sqlite_setup, monkeypatch):
        """With the allowance collapsed, the VM-op meter fires and the
        interrupt is reported like a native budget abort."""
        query, database = sqlite_setup
        monkeypatch.setattr(sqlite_backend, "MIN_OPS_ALLOWANCE", 1)
        monkeypatch.setattr(sqlite_backend, "OPS_PER_COST_UNIT", 0)
        monkeypatch.setattr(sqlite_backend, "PROGRESS_STRIDE", 2)
        sqlite = SqliteBackend(database, query)
        result = sqlite.run(plans(query)["hash-hash"], budget=1.0)
        assert not result.completed
        assert result.spent == 1.0
        assert result.observed is not None


class TestCompilation:
    def test_unknown_table_rejected(self, sqlite_setup):
        query, database = sqlite_setup
        sqlite = SqliteBackend(database, query)
        plan = finalize_plan(SeqScan("nowhere"))
        with pytest.raises(ExecutionError, match="nowhere"):
            sqlite.run(plan)

    def test_connection_is_lazy_and_reused(self, sqlite_setup):
        query, database = sqlite_setup
        sqlite = SqliteBackend(database, query)
        assert sqlite._conn is None
        sqlite.run(finalize_plan(SeqScan("fact")))
        conn = sqlite._conn
        sqlite.run(finalize_plan(SeqScan("d1")))
        assert sqlite._conn is conn


class TestMergeIterations:
    """The closed-form replay of the interpreter's merge loop."""

    def test_disjoint_keys_advance_single_side(self):
        left = [((1,), 2), ((3,), 1)]
        right = [((2,), 4)]
        iterations, out = merge_iterations(left, right)
        # advance left group (2 rows), then the right side exhausts
        # after its group is passed by the comparison with key 3.
        assert out == 0
        assert iterations == 2 + 4

    def test_equal_groups_emit_cross_products(self):
        left = [((1,), 2), ((2,), 3)]
        right = [((1,), 5), ((2,), 1)]
        iterations, out = merge_iterations(left, right)
        assert out == 2 * 5 + 3 * 1
        assert iterations == 2

    def test_stops_when_either_side_exhausts(self):
        left = [((1,), 1)]
        right = [((1,), 1), ((2,), 100)]
        iterations, out = merge_iterations(left, right)
        assert (iterations, out) == (1, 1)
