"""Tests for bounded cost-model error (§7's (1+delta)^2 inflation)."""

import pytest

from repro.algorithms.alignedbound import AlignedBound
from repro.algorithms.planbouquet import PlanBouquet
from repro.algorithms.spillbound import SpillBound
from repro.engine.noisy import NoisyEngine, inflated_guarantee
from repro.metrics.mso import exhaustive_sweep


class TestNoiseModel:
    def test_factors_bounded(self, toy_space):
        engine = NoisyEngine(toy_space, (3, 3), delta=0.4, seed=7)
        for plan in toy_space.plans:
            factor = engine._noise(plan.id)
            assert 1 / 1.4 - 1e-9 <= factor <= 1.4 + 1e-9

    def test_factors_deterministic(self, toy_space):
        a = NoisyEngine(toy_space, (3, 3), delta=0.4, seed=7)
        b = NoisyEngine(toy_space, (5, 5), delta=0.4, seed=7)
        for plan in toy_space.plans:
            assert a._noise(plan.id) == b._noise(plan.id)

    def test_zero_delta_matches_clean_engine(self, toy_space):
        from repro.engine.simulated import SimulatedEngine
        noisy = NoisyEngine(toy_space, (6, 6), delta=0.0)
        clean = SimulatedEngine(toy_space, (6, 6))
        plan = toy_space.optimal_plan((6, 6))
        assert noisy.true_cost(plan) == pytest.approx(
            clean.true_cost(plan))
        assert noisy.optimal_cost == pytest.approx(clean.optimal_cost)

    def test_rejects_negative_delta(self, toy_space):
        with pytest.raises(ValueError):
            NoisyEngine(toy_space, (0, 0), delta=-0.1)

    def test_oracle_cost_at_most_model_plan(self, toy_space):
        """The noisy oracle may beat the model-optimal plan (noise can
        reshuffle optimality) but never exceeds its noisy cost."""
        engine = NoisyEngine(toy_space, (9, 9), delta=0.5, seed=1)
        model_plan = toy_space.optimal_plan((9, 9))
        assert engine.optimal_cost <= engine.true_cost(model_plan) + 1e-9


class TestInflatedGuarantee:
    def test_formula(self):
        assert inflated_guarantee(10.0, 0.3) == pytest.approx(16.9)
        assert inflated_guarantee(10.0, 0.0) == 10.0


class TestGuaranteeUnderNoise:
    @pytest.mark.parametrize("delta", [0.1, 0.3])
    def test_spillbound_within_inflated_bound(self, toy_space,
                                              toy_contours, delta):
        """The §7 claim, verified exhaustively: under delta-bounded cost
        error, SpillBound's MSO stays within (D^2+3D)(1+delta)^2."""
        sb = SpillBound(toy_space, toy_contours)
        sweep = exhaustive_sweep(
            sb,
            engine_factory=lambda qa: NoisyEngine(
                toy_space, qa, delta=delta, seed=13),
        )
        assert sweep.mso <= inflated_guarantee(
            sb.mso_guarantee(), delta) + 1e-6

    @pytest.mark.parametrize("algorithm_cls",
                             [PlanBouquet, SpillBound, AlignedBound])
    def test_every_guarantee_inflates_by_delta_squared(
            self, toy_space, toy_contours, algorithm_cls):
        """§7 across the whole algorithm family and a seed sweep: under
        delta-bounded cost error, each empirical MSO stays within
        ``(1+delta)^2`` of that algorithm's nominal guarantee."""
        delta = 0.3
        algorithm = algorithm_cls(toy_space, toy_contours)
        bound = inflated_guarantee(algorithm.mso_guarantee(), delta)
        for seed in (1, 2, 3):
            sweep = exhaustive_sweep(
                algorithm,
                sample=60,
                rng=seed,
                engine_factory=lambda qa, s=seed: NoisyEngine(
                    toy_space, qa, delta=delta, seed=s),
            )
            assert sweep.mso <= bound + 1e-6, \
                "seed %d: MSOe %.3f exceeds inflated bound %.3f" % (
                    seed, sweep.mso, bound)

    def test_noise_changes_outcomes(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        clean = exhaustive_sweep(sb)
        noisy = exhaustive_sweep(
            sb,
            engine_factory=lambda qa: NoisyEngine(
                toy_space, qa, delta=0.3, seed=13),
        )
        assert noisy.mso != pytest.approx(clean.mso)
