"""Tests for anorexic plan-diagram reduction."""

import numpy as np
import pytest

from repro.common.errors import DiscoveryError
from repro.ess.anorexic import anorexic_reduction


class TestReduction:
    def test_cost_within_threshold(self, toy_space):
        lam = 0.2
        reduced = anorexic_reduction(toy_space, lam)
        for index in toy_space.grid.indices():
            plan_id = int(reduced.plan_at[index])
            cost = toy_space.plans[plan_id].cost[index]
            assert cost <= (1 + lam) * toy_space.optimal_cost(index) \
                * (1 + 1e-9)

    def test_never_grows_cardinality(self, toy_space):
        reduced = anorexic_reduction(toy_space, 0.2)
        assert reduced.cardinality <= toy_space.posp_size()

    def test_monotone_in_lambda(self, toy_space):
        sizes = [
            anorexic_reduction(toy_space, lam).cardinality
            for lam in (0.0, 0.1, 0.2, 0.5, 1.0, 10.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_huge_lambda_collapses_to_one(self, toy_space):
        reduced = anorexic_reduction(toy_space, 1e9)
        assert reduced.cardinality == 1

    def test_zero_lambda_optimal_everywhere(self, toy_space):
        reduced = anorexic_reduction(toy_space, 0.0)
        for index in toy_space.grid.indices():
            plan_id = int(reduced.plan_at[index])
            cost = toy_space.plans[plan_id].cost[index]
            assert cost == pytest.approx(
                toy_space.optimal_cost(index), rel=1e-9)

    def test_retained_ids_cover_assignment(self, toy_space):
        reduced = anorexic_reduction(toy_space, 0.2)
        present = set(int(p) for p in np.unique(reduced.plan_at))
        assert present <= set(reduced.retained)

    def test_rejects_negative_lambda(self, toy_space):
        with pytest.raises(DiscoveryError):
            anorexic_reduction(toy_space, -0.1)

    def test_requires_built_space(self, toy_query):
        from repro.ess.space import ExplorationSpace
        space = ExplorationSpace(toy_query, resolution=4, s_min=1e-5)
        with pytest.raises(DiscoveryError):
            anorexic_reduction(space)

    def test_deterministic(self, toy_space):
        a = anorexic_reduction(toy_space, 0.2)
        b = anorexic_reduction(toy_space, 0.2)
        assert np.array_equal(a.plan_at, b.plan_at)
        assert a.retained == b.retained
