"""Equivalence tests: vectorized executor vs the row executor."""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database
from repro.catalog.schema import Catalog, Column, Table
from repro.executor.runtime import RowEngine
from repro.executor.vectorized import VectorEngine, _match_indices
from repro.plans.nodes import (
    HashJoin,
    IndexNLJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    finalize_plan,
)
from repro.query.query import Query, make_filter, make_join


@pytest.fixture(scope="module")
def vec_setup():
    catalog = Catalog("vec", [
        Table("orders", 600, [
            Column("o_id", 600),
            Column("o_cust", 50),
            Column("o_total", 40, lo=0, hi=40),
        ]),
        Table("cust", 80, [
            Column("c_id", 50, indexed=True),
            Column("c_region", 6, lo=0, hi=6),
        ]),
        Table("region", 12, [
            Column("r_id", 6),
        ]),
    ])
    query = Query(
        "vec_q", catalog, ["orders", "cust", "region"],
        [
            make_join("oc", "orders.o_cust", "cust.c_id"),
            make_join("cr", "cust.c_region", "region.r_id"),
        ],
        [make_filter("cheap", "orders.o_total", "<", 20)],
        epps=("oc", "cr"),
    )
    database = generate_database(catalog, rng=3)
    return query, database


def two_join_plan(join_cls):
    return finalize_plan(join_cls(
        join_cls(
            SeqScan("orders", ("cheap",)),
            SeqScan("cust"),
            ("oc",),
        ),
        SeqScan("region"),
        ("cr",),
    ))


class TestMatchIndices:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 12, size=40)
        right = rng.integers(0, 12, size=25)
        li, ri = _match_indices(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i in range(left.size)
            for j in range(right.size)
            if left[i] == right[j]
        )
        assert got == expected

    def test_empty_inputs(self):
        li, ri = _match_indices(np.array([1, 2]), np.array([], dtype=int))
        assert li.size == 0 and ri.size == 0


class TestOperatorEquivalence:
    @pytest.mark.parametrize("join_cls",
                             [HashJoin, MergeJoin, NestedLoopJoin])
    def test_row_counts_match(self, vec_setup, join_cls):
        query, database = vec_setup
        plan = two_join_plan(join_cls)
        row_result = RowEngine(database, query).run(plan)
        vec_result = VectorEngine(database, query).run(plan)
        assert vec_result.completed
        assert vec_result.row_count == row_result.row_count

    @pytest.mark.parametrize("join_cls", [HashJoin, NestedLoopJoin])
    def test_spent_identical_for_hash_and_nl(self, vec_setup, join_cls):
        """Hash/NL charge formulas are data-independent per row, so the
        metered cost of a completed run is identical to the row engine."""
        query, database = vec_setup
        plan = two_join_plan(join_cls)
        row_spent = RowEngine(database, query).run(plan).spent
        vec_spent = VectorEngine(database, query).run(plan).spent
        assert vec_spent == pytest.approx(row_spent, rel=1e-12)

    def test_merge_spent_close(self, vec_setup):
        """The row engine's merge loop charges per comparison step; the
        vector engine charges the model's (L+R) term -- close, not
        identical."""
        query, database = vec_setup
        plan = two_join_plan(MergeJoin)
        row_spent = RowEngine(database, query).run(plan).spent
        vec_spent = VectorEngine(database, query).run(plan).spent
        assert vec_spent == pytest.approx(row_spent, rel=0.1)

    def test_monitor_selectivities_match(self, vec_setup):
        query, database = vec_setup
        plan = two_join_plan(HashJoin)
        node_id = plan.left.node_id
        row_sel = RowEngine(database, query).true_selectivity(
            plan, node_id)
        vec_sel = VectorEngine(database, query).true_selectivity(
            plan, node_id)
        assert vec_sel == pytest.approx(row_sel)

    def test_index_join_matches_row_engine(self, vec_setup):
        query, database = vec_setup
        plan = finalize_plan(IndexNLJoin(
            SeqScan("orders", ("cheap",)), ("oc",), "cust", "c_id"))
        row_result = RowEngine(database, query).run(plan)
        vec_result = VectorEngine(database, query).run(plan)
        assert vec_result.row_count == row_result.row_count
        assert vec_result.spent == pytest.approx(row_result.spent,
                                                 rel=1e-12)

    def test_keep_rows(self, vec_setup):
        query, database = vec_setup
        plan = two_join_plan(HashJoin)
        result = VectorEngine(database, query).run(plan, keep_rows=True)
        assert len(result.rows) == result.row_count
        if result.rows:
            assert "region.r_id" in result.rows[0]


class TestBudgets:
    def test_abort_partial(self, vec_setup):
        query, database = vec_setup
        plan = two_join_plan(HashJoin)
        engine = VectorEngine(database, query)
        full = engine.run(plan)
        partial = engine.run(plan, budget=full.spent / 3)
        assert not partial.completed
        assert partial.spent <= full.spent

    def test_spill_truncation(self, vec_setup):
        query, database = vec_setup
        plan = two_join_plan(HashJoin)
        engine = VectorEngine(database, query)
        node_id = plan.left.node_id
        spilled = engine.run(plan, spill_node_id=node_id)
        row_spilled = RowEngine(database, query).run(
            plan, spill_node_id=node_id)
        assert spilled.row_count == row_spilled.row_count
