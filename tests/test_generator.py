"""Tests for the random workload generator."""

import pytest

from repro.common.errors import QueryError
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.harness.generator import SHAPES, random_catalog, random_query
from repro.metrics.mso import exhaustive_sweep


class TestRandomCatalog:
    def test_structure(self):
        catalog = random_catalog(0, 3)
        assert "fact" in catalog
        assert all("dim%d" % k in catalog for k in range(3))

    def test_deterministic(self):
        a = random_catalog(7, 2)
        b = random_catalog(7, 2)
        assert a.table("fact").row_count == b.table("fact").row_count

    def test_dimension_tables_smaller_than_fact_range(self):
        catalog = random_catalog(1, 4, dim_rows=(10, 100))
        for k in range(4):
            assert catalog.table("dim%d" % k).row_count <= 100


class TestRandomQuery:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_shapes_validate(self, shape):
        query = random_query(3, dims=3, shape=shape)
        assert query.dimensions == 3
        assert len(query.joins) == 3

    def test_unknown_shape_rejected(self):
        with pytest.raises(QueryError):
            random_query(0, shape="ring")

    def test_chain_is_a_path(self):
        query = random_query(1, dims=4, shape="chain")
        # Each relation (except the ends) appears in exactly two joins.
        counts = {}
        for join in query.joins:
            for table in join.tables:
                counts[table] = counts.get(table, 0) + 1
        assert sorted(counts.values()) == [1, 1, 2, 2, 2]

    def test_star_centres_on_fact(self):
        query = random_query(2, dims=4, shape="star")
        for join in query.joins:
            assert "fact" in join.tables

    def test_epps_subset(self):
        query = random_query(4, dims=3, shape="star", epps=("j0", "j2"))
        assert query.dimensions == 2

    def test_generated_instance_respects_guarantee(self):
        """Random instances feed the full pipeline and obey the bound."""
        from repro.algorithms.spillbound import SpillBound
        query = random_query(11, dims=2, shape="star")
        space = ExplorationSpace(query, resolution=8, s_min=1e-5)
        space.build(mode="exact")
        sb = SpillBound(space, ContourSet(space))
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= sb.mso_guarantee() + 1e-6
