"""Concurrency hammer tests for the shared serving-path structures.

The serving daemon resolves every tenant's request against one
:class:`~repro.session.cache.ArtifactCache`, one
:class:`~repro.session.registry.BreakerBoard` and (across processes)
one disk artifact directory. These tests hammer each from many
threads/processes and assert the invariants the daemon depends on:
no torn LRU bookkeeping, single breaker identity per spec, exactly one
valid archive per fingerprint on disk.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.robustness.durable import CircuitBreaker
from repro.session import BreakerBoard, EngineSpec, RobustSession
from repro.session.cache import ArtifactCache, SpaceKey

THREADS = 8
ROUNDS = 60


def _key(i, resolution=4):
    return SpaceKey("q%d" % i, ("a", "b"), ("t1", "t2"), "toy",
                    resolution, "fast", 1e-6, 0)


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on many threads; re-raise any failure."""
    errors = []
    barrier = threading.Barrier(threads)

    def wrapped(index):
        try:
            barrier.wait(5)
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=wrapped, args=(i,))
            for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join(30)
    assert not errors, errors


class _FakeSpace:
    """Stand-in build product; the memory tier never introspects it."""

    def __init__(self, tag):
        self.tag = tag


class TestCacheHammer:
    def test_lru_stays_consistent_under_contention(self):
        cache = ArtifactCache(memory_slots=3)
        built = []
        mutex = threading.Lock()

        def builder_for(i):
            def build():
                with mutex:
                    built.append(i)
                time.sleep(0.001)  # widen the cold-miss race window
                return _FakeSpace(i)
            return build

        def worker(index):
            for round_no in range(ROUNDS):
                i = (index + round_no) % 6  # 6 keys > 3 slots: evictions
                space = cache.space(_key(i), None, builder_for(i))
                assert space.tag == i

        _hammer(worker)
        assert len(cache) <= 3
        # Every lookup resolved to a correctly-tagged space and the
        # stats ledger balances: lookups = hits + builds.
        assert cache.stats.lookups == THREADS * ROUNDS
        assert cache.stats.builds == len(built)

    def test_racing_cold_misses_share_one_published_entry(self):
        cache = ArtifactCache(memory_slots=8)
        release = threading.Event()

        def build():
            release.wait(5)  # hold every racer inside the build
            return _FakeSpace("x")

        results = []
        mutex = threading.Lock()

        def worker(index):
            if index == THREADS - 1:
                time.sleep(0.05)
                release.set()
                return
            space = cache.space(_key(0), None, build)
            with mutex:
                results.append(space)

        _hammer(worker)
        # Losers of the publish race adopt the winner's entry: later
        # lookups all observe one shared object.
        again = cache.space(_key(0), None,
                            lambda: pytest.fail("should be cached"))
        assert all(space is again or space.tag == "x"
                   for space in results)
        assert len(cache) == 1

    def test_probe_reports_tiers_without_touching_lru(self):
        cache = ArtifactCache(memory_slots=2)
        cache.space(_key(1), None, lambda: _FakeSpace(1))
        cache.space(_key(2), None, lambda: _FakeSpace(2))
        assert cache.probe(_key(1)) == "memory"
        assert cache.probe(_key(9)) is None
        # probe() must not refresh LRU order: key 1 is still the
        # eviction victim even though it was probed last.
        cache.space(_key(3), None, lambda: _FakeSpace(3))
        assert cache.probe(_key(1)) is None
        assert cache.probe(_key(2)) == "memory"

    def test_probe_sees_disk_tier(self, tmp_path):
        session = RobustSession(cache_dir=str(tmp_path), resolution=4)
        query = session.query("3D_Q15")
        session.space(query, resolution=4)
        key = SpaceKey.of(query, resolution=4)
        assert session.cache.probe(key) == "memory"
        session.cache.clear()
        assert session.cache.probe(key) == "disk"


class TestBreakerHammer:
    def test_board_resolves_one_breaker_per_spec(self):
        board = BreakerBoard()
        seen = []
        mutex = threading.Lock()
        spec = EngineSpec.parse("simulated+noisy(delta=0.3)")

        def worker(index):
            for _ in range(ROUNDS):
                breaker = board.breaker_for(spec)
                with mutex:
                    seen.append(breaker)

        _hammer(worker)
        assert len(set(id(b) for b in seen)) == 1
        assert len(board) == 1

    def test_concurrent_failures_trip_the_breaker_exactly_once(self):
        breaker = CircuitBreaker(threshold=5, cooldown=10**6)

        def worker(index):
            for _ in range(ROUNDS):
                breaker.record_failure()

        _hammer(worker)
        # The race this guards against: two threads both observing
        # ``threshold - 1`` failures and double-tripping. Under the
        # mutex the transition happens exactly once.
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened == 1
        assert breaker.failures == THREADS * ROUNDS

    def test_breaker_state_machine_survives_mixed_contention(self):
        breaker = CircuitBreaker(threshold=3, cooldown=4)

        def worker(index):
            for round_no in range(ROUNDS):
                if breaker.allow():
                    # Uneven per-thread schedules so failure streaks,
                    # successes and half-open probes all interleave.
                    if (index * 7 + round_no) % 5 == index % 5:
                        breaker.record_success()
                    else:
                        breaker.record_failure()

        _hammer(worker)
        stats = breaker.stats()
        assert breaker.state in (CircuitBreaker.CLOSED,
                                 CircuitBreaker.OPEN,
                                 CircuitBreaker.HALF_OPEN)
        assert stats["opened"] >= 1
        assert stats["fast_fails"] >= 0
        # A final success must always close it cleanly.
        breaker.allow()
        breaker.record_success()
        assert breaker.failures == 0


# ----------------------------------------------------------------------
# cross-process disk tier

_WARM_SNIPPET = """
import sys, time
sys.path.insert(0, %(src)r)
from repro.session import RobustSession

# Barrier on a sentinel file so both processes build concurrently.
while not __import__("os").path.exists(%(go)r):
    time.sleep(0.005)
session = RobustSession(cache_dir=%(cache)r, resolution=5)
space = session.space("3D_Q15", resolution=5)
print("%%d,%%d" %% (session.stats.builds, session.stats.disk_hits))
"""


@pytest.mark.slow
class TestFileLockStress:
    def test_two_processes_warming_same_fingerprint(self, tmp_path):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        cache = str(tmp_path / "artifacts")
        go = str(tmp_path / "go")
        snippet = _WARM_SNIPPET % {"src": src, "cache": cache, "go": go}
        procs = [subprocess.Popen([sys.executable, "-c", snippet],
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE)
                 for _ in range(2)]
        with open(go, "w") as handle:
            handle.write("go")
        outputs = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            outputs.append(out.decode().strip())

        # Exactly one complete archive, no torn/partial temp files and
        # no leaked lock files.
        files = sorted(os.listdir(cache))
        archives = [f for f in files if f.endswith(".npz")
                    and not f.startswith(".")]
        assert len(archives) == 1
        assert not [f for f in files if ".tmp." in f]

        # The archive is genuinely loadable (not torn): a third,
        # fresh process-equivalent session must disk-hit, not rebuild.
        verify = RobustSession(cache_dir=cache, resolution=5)
        verify.space("3D_Q15", resolution=5)
        assert verify.stats.disk_hits == 1
        assert verify.stats.builds == 0
        assert verify.stats.invalidations == 0
