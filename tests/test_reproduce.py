"""Tests for the one-shot reproduction driver."""

import pytest

from repro.harness.reproduce import _SECTIONS, full_reproduction


class TestFullReproduction:
    @pytest.fixture(scope="class")
    def report_text(self):
        titles = []
        text = full_reproduction(
            quick=True, names=("2D_Q91",),
            progress=titles.append,
        )
        return text, titles

    def test_every_section_present(self, report_text):
        text, titles = report_text
        assert len(titles) == len(_SECTIONS)
        for title, _driver in _SECTIONS:
            assert "## %s" % title in text

    def test_key_artifacts_rendered(self, report_text):
        text, _titles = report_text
        assert "MSO guarantee per query" in text
        assert "Q91 guarantee ramp" in text
        assert "Metered cost" in text  # wall-clock section
        assert "Join Order Benchmark" in text

    def test_markdown_structure(self, report_text):
        text, _titles = report_text
        assert text.startswith("# Full reproduction report")
        assert text.count("```") % 2 == 0  # balanced code fences

    def test_cli_reproduce(self, tmp_path, capsys, monkeypatch):
        # Stub the heavy driver: the CLI's job is wiring and file IO.
        import repro.harness.reproduce as reproduce_module
        monkeypatch.setattr(
            reproduce_module, "full_reproduction",
            lambda quick, progress=None: "# Full reproduction report\n"
            "(stub: quick=%s)" % quick,
        )
        from repro.cli import main
        out_path = str(tmp_path / "report.md")
        code = main(["reproduce", "--out", out_path])
        assert code == 0
        content = open(out_path).read()
        assert "# Full reproduction report" in content
        assert "quick=True" in content
