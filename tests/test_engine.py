"""Tests for the cost-metered simulated engine."""

import numpy as np
import pytest

from repro.common.errors import DiscoveryError
from repro.engine.simulated import SimulatedEngine


@pytest.fixture()
def engine(toy_space):
    return SimulatedEngine(toy_space, (8, 8))


class TestRegularExecution:
    def test_completes_when_budget_sufficient(self, toy_space, engine):
        plan = toy_space.optimal_plan((8, 8))
        cost = toy_space.optimal_cost((8, 8))
        outcome = engine.execute(plan, cost * 1.01)
        assert outcome.completed
        assert outcome.spent == pytest.approx(cost)

    def test_fails_when_budget_insufficient(self, toy_space, engine):
        plan = toy_space.optimal_plan((8, 8))
        cost = toy_space.optimal_cost((8, 8))
        outcome = engine.execute(plan, cost * 0.5)
        assert not outcome.completed
        assert outcome.spent == pytest.approx(cost * 0.5)

    def test_exact_budget_completes(self, toy_space, engine):
        plan = toy_space.optimal_plan((8, 8))
        cost = toy_space.optimal_cost((8, 8))
        assert engine.execute(plan, cost).completed

    def test_optimal_cost_property(self, toy_space, engine):
        assert engine.optimal_cost == toy_space.optimal_cost((8, 8))

    def test_dimensionality_checked(self, toy_space):
        with pytest.raises(DiscoveryError):
            SimulatedEngine(toy_space, (1, 2, 3))


class TestSpillExecution:
    def _spill_parts(self, toy_space, index):
        plan = toy_space.optimal_plan(index)
        target = plan.spill_target(set(toy_space.query.epps))
        assert target is not None
        return plan, target

    def test_completion_learns_exactly(self, toy_space):
        qa = (5, 11)
        engine = SimulatedEngine(toy_space, qa)
        plan, (epp, node) = self._spill_parts(toy_space, qa)
        dim = toy_space.query.epp_index(epp)
        outcome = engine.execute_spill(plan, epp, node, float("inf"))
        assert outcome.completed
        assert outcome.learned_index == qa[dim]
        assert outcome.dim == dim

    def test_failure_gives_lower_bound(self, toy_space):
        qa = (14, 14)
        engine = SimulatedEngine(toy_space, qa)
        plan, (epp, node) = self._spill_parts(toy_space, qa)
        dim = toy_space.query.epp_index(epp)
        # Tiny budget: even if it fails, the bound must undercut qa.
        profile = engine._subtree_profile(plan, epp, node)
        budget = float(profile[qa[dim]]) * 0.25
        outcome = engine.execute_spill(plan, epp, node, budget)
        if not outcome.completed:
            assert outcome.learned_index < qa[dim]
            assert outcome.spent == pytest.approx(budget)

    def test_profile_monotone(self, toy_space):
        engine = SimulatedEngine(toy_space, (3, 3))
        plan, (epp, node) = self._spill_parts(toy_space, (3, 3))
        profile = engine._subtree_profile(plan, epp, node)
        assert np.all(np.diff(profile) > 0)

    def test_profile_cached(self, toy_space):
        engine = SimulatedEngine(toy_space, (3, 3))
        plan, (epp, node) = self._spill_parts(toy_space, (3, 3))
        a = engine._subtree_profile(plan, epp, node)
        b = engine._subtree_profile(plan, epp, node)
        assert a is b

    def _distinct_spill_parts(self, toy_space, count):
        parts = []
        seen = set()
        epps = set(toy_space.query.epps)
        for plan in toy_space.plans:
            target = plan.spill_target(epps)
            if target is None:
                continue
            epp, node = target
            key = (plan.id, epp, node.node_id)
            if key in seen:
                continue
            seen.add(key)
            parts.append((plan, epp, node))
            if len(parts) == count:
                break
        return parts

    def test_spill_cache_bounded(self, toy_space):
        engine = SimulatedEngine(toy_space, (3, 3), spill_cache_cap=2)
        parts = self._distinct_spill_parts(toy_space, 4)
        assert len(parts) >= 3
        for plan, epp, node in parts:
            engine._subtree_profile(plan, epp, node)
            assert len(engine._spill_cache) <= 2

    def test_spill_cache_evicts_least_recently_used(self, toy_space):
        engine = SimulatedEngine(toy_space, (3, 3), spill_cache_cap=2)
        parts = self._distinct_spill_parts(toy_space, 3)
        assert len(parts) == 3
        first = engine._subtree_profile(*parts[0])
        engine._subtree_profile(*parts[1])
        # Touch the first entry so the *second* becomes the LRU victim.
        assert engine._subtree_profile(*parts[0]) is first
        engine._subtree_profile(*parts[2])
        assert engine._subtree_profile(*parts[0]) is first
        assert (parts[1][0].id, parts[1][1], parts[1][2].node_id) \
            not in engine._spill_cache

    def test_spill_cheaper_than_full(self, toy_space):
        """Subtree cost never exceeds the full plan cost (spilling only
        discards downstream work)."""
        qa = (10, 10)
        engine = SimulatedEngine(toy_space, qa)
        plan, (epp, node) = self._spill_parts(toy_space, qa)
        outcome = engine.execute_spill(plan, epp, node, float("inf"))
        assert outcome.spent <= engine.true_cost(plan) * (1 + 1e-9)

    def test_nothing_learned_is_minus_one(self, toy_space):
        """Regression: a failed spill whose budget undercuts even the
        smallest subtree cost reports ``learned_index == -1`` ("nothing
        learned"), never a wrapped-around last grid index."""
        qa = (12, 12)
        engine = SimulatedEngine(toy_space, qa)
        plan, (epp, node) = self._spill_parts(toy_space, qa)
        profile = engine._subtree_profile(plan, epp, node)
        outcome = engine.execute_spill(
            plan, epp, node, float(profile[0]) * 0.5)
        assert not outcome.completed
        assert outcome.learned_index == -1

    def test_learn_bound_tolerates_minus_one(self, toy_space):
        """``learn_bound(dim, -1)`` must be a no-op (lower bound stays at
        grid index 0), not an off-by-one or a negative index."""
        from repro.algorithms.spillbound import _DiscoveryState
        state = _DiscoveryState(toy_space)
        state.learn_bound(0, -1)
        assert state.qrun == [0] * toy_space.grid.dims

    def test_lemma_3_1(self, toy_space, toy_contours):
        """Executing the contour plan with the contour budget either
        learns the selectivity exactly or certifies qa beyond the
        location (half-space pruning)."""
        for qa in [(2, 13), (9, 9), (15, 3)]:
            engine = SimulatedEngine(toy_space, qa)
            for i in range(len(toy_contours)):
                members = toy_contours.members(i)
                for pos in range(len(members)):
                    coord = tuple(int(c) for c in members.coords[pos])
                    plan = toy_space.plans[int(members.plan_ids[pos])]
                    target = plan.spill_target(set(toy_space.query.epps))
                    if target is None:
                        continue
                    epp, node = target
                    dim = toy_space.query.epp_index(epp)
                    outcome = engine.execute_spill(
                        plan, epp, node, toy_contours.cost(i))
                    if outcome.completed:
                        assert outcome.learned_index == qa[dim]
                    else:
                        # qa.j strictly beyond the learnt bound, which in
                        # turn reaches at least the member's coordinate
                        # (the subtree is pure in e_j, and its cost at
                        # the member fits under the contour budget).
                        assert qa[dim] > outcome.learned_index
                        assert outcome.learned_index >= coord[dim]
