"""Tests for the graceful-degradation guard and discovery checkpoints."""

from types import SimpleNamespace

import pytest

from repro.algorithms.alignedbound import AlignedBound
from repro.algorithms.planbouquet import PlanBouquet
from repro.algorithms.spillbound import SpillBound, _DiscoveryState
from repro.common.errors import DiscoveryError
from repro.engine.faulty import FaultPlan, FaultyEngine
from repro.engine.noisy import NoisyEngine
from repro.robustness import DiscoveryCheckpoint, DiscoveryGuard, RetryPolicy

ALGORITHMS = [PlanBouquet, SpillBound, AlignedBound]

EXTRA_KEYS = {"degraded", "retries", "wasted_cost",
              "effective_mso_inflation", "meter_drift", "violations"}


class TestRetryPolicy:
    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestZeroOverhead:
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_guard_is_a_pass_through_without_faults(
            self, toy_space, toy_contours, algorithm_cls):
        """Acceptance: with faults disabled, guarded and unguarded runs
        perform the *same executions* and report the same
        sub-optimality."""
        algorithm = algorithm_cls(toy_space, toy_contours)
        guard = DiscoveryGuard(algorithm_cls(toy_space, toy_contours))
        for qa in [(3, 7), (12, 2), (15, 15), (0, 0)]:
            plain = algorithm.run(qa)
            guarded = guard.run(qa)
            assert guarded.sub_optimality == plain.sub_optimality
            assert len(guarded.executions) == len(plain.executions)
            for a, b in zip(plain.executions, guarded.executions):
                assert (a.contour, a.plan_id, a.mode, a.epp, a.budget,
                        a.spent, a.completed, a.learned) == \
                       (b.contour, b.plan_id, b.mode, b.epp, b.budget,
                        b.spent, b.completed, b.learned)
            assert guarded.extras["degraded"] is False
            assert guarded.extras["retries"] == 0
            assert guarded.extras["wasted_cost"] == 0.0
            assert guarded.extras["effective_mso_inflation"] == 1.0

    def test_guard_reports_wrapped_guarantee_and_name(
            self, toy_space, toy_contours):
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours))
        assert guard.name == "guarded-spillbound"
        assert guard.mso_guarantee() == \
            SpillBound(toy_space, toy_contours).mso_guarantee()


class TestGuardUnderFaults:
    def test_every_run_terminates_with_answer_or_degraded(
            self, toy_space, toy_contours):
        """Acceptance: under a seeded FaultPlan with crash rate 0.2 and
        corruption 0.1, every guarded run terminates and either answers
        with clean accounting or reports degraded=True."""
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours))
        plan = FaultPlan(crash_rate=0.2, transient_rate=0.1,
                         corruption_rate=0.1, drift_rate=0.1, seed=5)
        for flat in range(0, toy_space.grid.size, 13):
            qa = toy_space.grid.unflat(flat)
            engine = FaultyEngine(toy_space, qa, plan=plan)
            result = guard.run(qa, engine=engine)
            assert result.executions[-1].completed
            assert EXTRA_KEYS <= set(result.extras)
            assert result.extras["effective_mso_inflation"] >= 1.0
            if result.extras["degraded"]:
                assert result.extras["fallback"] == "native"
            else:
                assert result.extras["violations"] == []
                assert result.sub_optimality >= 1.0

    def test_transient_exhaustion_degrades(self, toy_space, toy_contours):
        guard = DiscoveryGuard(
            SpillBound(toy_space, toy_contours),
            policy=RetryPolicy(max_retries=2))
        engine = FaultyEngine(toy_space, (8, 8),
                              plan=FaultPlan(transient_rate=1.0))
        result = guard.run((8, 8), engine=engine)
        assert result.extras["degraded"] is True
        assert result.extras["retries"] == 3
        assert result.extras["fallback"] == "native"
        # Transients fire before any spend: nothing was wasted.
        assert result.extras["wasted_cost"] == 0.0
        assert result.executions[-1].completed

    def test_crashes_accumulate_wasted_cost(self, toy_space, toy_contours):
        guard = DiscoveryGuard(
            SpillBound(toy_space, toy_contours),
            policy=RetryPolicy(max_retries=2))
        engine = FaultyEngine(toy_space, (8, 8),
                              plan=FaultPlan(crash_rate=1.0, seed=2))
        result = guard.run((8, 8), engine=engine)
        assert result.extras["degraded"] is True
        assert result.extras["wasted_cost"] > 0.0
        assert result.extras["effective_mso_inflation"] > 1.0

    def test_degraded_fallback_runs_on_sound_engine(
            self, toy_space, toy_contours):
        """The fallback must not execute on the faulty substrate: a
        crash-certain engine would never let the native run finish."""
        guard = DiscoveryGuard(
            SpillBound(toy_space, toy_contours),
            policy=RetryPolicy(max_retries=0))
        engine = FaultyEngine(
            toy_space, (8, 8),
            plan=FaultPlan(crash_rate=1.0, transient_rate=0.0, seed=4))
        result = guard.run((8, 8), engine=engine)
        assert result.extras["degraded"] is True
        assert result.executions[-1].completed
        assert result.total_cost > 0.0

    def test_guard_composes_with_cost_noise(self, toy_space, toy_contours):
        base = NoisyEngine(toy_space, (9, 9), delta=0.3, seed=13)
        engine = FaultyEngine(
            toy_space, (9, 9),
            plan=FaultPlan(crash_rate=0.2, drift_rate=0.2, seed=6),
            base=base)
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours))
        result = guard.run((9, 9), engine=engine)
        assert result.executions[-1].completed
        assert EXTRA_KEYS <= set(result.extras)


class TestEscalation:
    def test_first_failure_does_not_escalate(self, toy_space,
                                             toy_contours):
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours))
        checkpoint = DiscoveryCheckpoint()
        checkpoint.capture(2)
        last, stepped = guard._escalate(checkpoint, None)
        assert (last, stepped) == (2, 0)
        assert checkpoint.contour == 2

    def test_repeat_failure_advances_one_rung(self, toy_space,
                                              toy_contours):
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours))
        checkpoint = DiscoveryCheckpoint()
        checkpoint.capture(2)
        last, _ = guard._escalate(checkpoint, None)
        last, stepped = guard._escalate(checkpoint, last)
        assert stepped == 1
        assert checkpoint.contour == 3

    def test_escalation_can_be_disabled(self, toy_space, toy_contours):
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               policy=RetryPolicy(escalate=False))
        checkpoint = DiscoveryCheckpoint()
        checkpoint.capture(2)
        last, _ = guard._escalate(checkpoint, None)
        _, stepped = guard._escalate(checkpoint, last)
        assert stepped == 0
        assert checkpoint.contour == 2

    def test_escalation_capped_at_top_rung(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        guard = DiscoveryGuard(sb)
        top = len(sb.contours) - 1
        checkpoint = DiscoveryCheckpoint()
        checkpoint.capture(top)
        last, _ = guard._escalate(checkpoint, None)
        _, stepped = guard._escalate(checkpoint, last)
        assert stepped == 0
        assert checkpoint.contour == top


class TestLadderValidation:
    def test_corrupted_ladder_rejected(self, toy_space):
        class _BadLadderAlgo:
            space = toy_space
            name = "bad"
            contours = SimpleNamespace(costs=[1.0, 2.0, 8.0], ratio=2.0)

        with pytest.raises(DiscoveryError):
            DiscoveryGuard(_BadLadderAlgo())

    def test_geometric_ladder_accepted(self, toy_space, toy_contours):
        DiscoveryGuard(SpillBound(toy_space, toy_contours))


class TestCheckpointResume:
    def _crash_ordinal(self, clean):
        """1-based ordinal of the first execution of the last contour."""
        contours = [r.contour for r in clean.executions]
        target = contours[-1]
        return contours.index(target) + 1, target

    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_resume_never_reexecutes_completed_contours(
            self, toy_space, toy_contours, algorithm_cls):
        qa = (14, 10)
        clean = algorithm_cls(toy_space, toy_contours).run(qa)
        ordinal, target = self._crash_ordinal(clean)
        if target == 0:
            pytest.skip("run resolves within the first contour")
        guard = DiscoveryGuard(algorithm_cls(toy_space, toy_contours))
        engine = FaultyEngine(
            toy_space, qa, plan=FaultPlan(crash_on_calls=(ordinal,)))
        result = guard.run(qa, engine=engine)
        assert result.extras["degraded"] is False
        assert result.extras["retries"] == 1
        assert result.extras["wasted_cost"] > 0.0
        assert result.executions[-1].completed
        # The resumed attempt starts at the checkpointed contour: no
        # record from a contour the crashed attempt had completed.
        first = min(r.contour for r in result.executions
                    if r.contour >= 0)
        assert first >= target

    def test_resumed_bounds_survive(self, toy_space, toy_contours):
        """Selectivity knowledge certified before the crash seeds the
        retry: the resumed run must not spill on a dimension the first
        attempt had already resolved below the crash contour."""
        qa = (14, 10)
        sb = SpillBound(toy_space, toy_contours)
        clean = sb.run(qa)
        resolved_before = {}
        for pos, rec in enumerate(clean.executions):
            if rec.mode == "spill" and rec.completed:
                resolved_before[rec.epp] = pos + 1
        ordinal, target = self._crash_ordinal(clean)
        early = {epp for epp, pos in resolved_before.items()
                 if pos < ordinal}
        if not early:
            pytest.skip("no dimension resolves before the last contour")
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours))
        engine = FaultyEngine(
            toy_space, qa, plan=FaultPlan(crash_on_calls=(ordinal,)))
        result = guard.run(qa, engine=engine)
        assert result.extras["degraded"] is False
        for rec in result.executions:
            if rec.mode == "spill":
                assert rec.epp not in early


class TestCheckpointState:
    def test_capture_then_restore_roundtrip(self, toy_space):
        checkpoint = DiscoveryCheckpoint()
        assert not checkpoint.active
        checkpoint.capture(3, resolved={0: 7}, qrun=[7, 4],
                           remaining={"j2"}, executed={(2, "j1")})
        state = _DiscoveryState(toy_space)
        state.qrun[1] = 6  # already-known tighter bound survives merge
        resume = checkpoint.restore(state)
        assert resume == 3
        assert state.resolved == {0: 7}
        assert state.qrun == [7, 6]
        assert state.remaining == {"j2"}
        assert (2, "j1") in state.executed

    def test_clear_forgets_everything(self):
        checkpoint = DiscoveryCheckpoint()
        checkpoint.capture(5, resolved={1: 2}, qrun=[2, 2])
        checkpoint.clear()
        assert not checkpoint.active
        assert checkpoint.contour == 0
        assert checkpoint.resolved == {}
        assert checkpoint.qrun is None

    def test_json_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        checkpoint = DiscoveryCheckpoint(path=path)
        checkpoint.capture(4, resolved={0: 9, 1: 3}, qrun=[9, 3],
                           remaining=set(), executed={(1, "j1"), (3, "j2")})
        loaded = DiscoveryCheckpoint.load(path)
        assert loaded.active
        assert loaded.contour == 4
        assert loaded.resolved == {0: 9, 1: 3}
        assert loaded.qrun == [9, 3]
        assert loaded.remaining == set()
        assert loaded.executed == {(1, "j1"), (3, "j2")}
        assert loaded.to_dict() == checkpoint.to_dict()
