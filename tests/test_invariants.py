"""Seeded property suite: the paper's guarantees on random geometries.

The guarantee theorems (SpillBound's D^2+3D, AlignedBound never worse
than SpillBound's bound, PlanBouquet's 4(1+lambda)rho, the oracle's
MSO = 1, monotone contour ladders) are claims about *every* PCM-valid
cost geometry, not about the handful of hand-crafted spaces the unit
tests exercise. This suite draws randomized synthetic ESS instances --
varied dimensionality, grid resolution, contour cost ratio, plan count
and coefficients -- and checks each invariant on every instance.

Every instance is derived from an explicit integer seed that appears in
the test id and in every assertion message, so a failure is reproducible
with ``random_instance(seed)`` in a REPL. Coefficients are all strictly
positive, which makes each plan's cost strictly increasing in every
selectivity (the PCM precondition of the theorems); the SyntheticSpace
constructor additionally validates PCM numerically on the grid.
"""

import numpy as np
import pytest

from repro.algorithms import AlignedBound, Oracle, PlanBouquet, SpillBound
from repro.algorithms.spillbound import spillbound_guarantee
from repro.ess.contours import ContourSet
from repro.ess.synthetic import SyntheticPlan, SyntheticSpace
from repro.metrics.mso import exhaustive_sweep

#: One randomized ESS instance per seed; every algorithm is swept over
#: every instance, so each algorithm sees >= 25 distinct geometries.
SEEDS = list(range(101, 129))

#: Contour cost ratios the ladder-dependent invariants are tried at.
RATIOS = (1.5, 2.0, 3.0)


def random_instance(seed):
    """A randomized PCM-valid synthetic space and a contour ratio.

    Plans are ``1000 * (a0 + sum_d lin_d s_d + cross * prod_d s_d)``
    with strictly positive coefficients: increasing in every argument,
    so PCM holds by construction, while relative plan rankings (hence
    POSP structure, contour coverage and spill behaviour) vary freely
    with the draw.
    """
    rng = np.random.default_rng(seed)
    dims = int(rng.integers(2, 4))
    resolution = int(rng.integers(6, 10)) if dims == 2 \
        else int(rng.integers(4, 7))
    ratio = float(rng.choice(RATIOS))
    plans = []
    for pos in range(int(rng.integers(2, 5))):
        a0 = float(rng.uniform(1.0, 3.0))
        lin = tuple(float(w) for w in rng.uniform(20.0, 900.0, size=dims))
        cross = float(rng.uniform(100.0, 3000.0))

        def cost_fn(*sels, _a0=a0, _lin=lin, _cross=cross):
            total = _a0
            for weight, s in zip(_lin, sels):
                total = total + weight * s
            prod = sels[0]
            for s in sels[1:]:
                prod = prod * s
            return 1000.0 * (total + _cross * prod)

        spill_dims = tuple(int(d) for d in rng.permutation(dims))
        plans.append(SyntheticPlan("p%d" % pos, cost_fn,
                                   spill_dims=spill_dims))
    space = SyntheticSpace(dims, plans, resolution=resolution,
                           s_min=1e-3)
    return space, ratio


@pytest.fixture(scope="module", params=SEEDS,
                ids=lambda seed: "seed%d" % seed)
def instance(request):
    """``(seed, space, ratio, contours)`` -- one instance per seed,
    shared by all invariant checks (module-scoped: the space is built
    once, swept five times)."""
    seed = request.param
    space, ratio = random_instance(seed)
    return seed, space, ratio, ContourSet(space, ratio=ratio)


class TestGuaranteeInvariants:
    def test_oracle_mso_is_one(self, instance):
        seed, space, _ratio, _contours = instance
        sweep = exhaustive_sweep(Oracle(space))
        assert sweep.mso == pytest.approx(1.0, abs=1e-9), \
            "seed %d: oracle MSO %.6f != 1" % (seed, sweep.mso)

    # The SpillBound/AlignedBound checks run on the *doubling* ladder
    # (Theorem 4.5's setting, bound D^2+3D). The generalised
    # sub-doubling formula r*(D*r/(r-1) + D(D-1)/2) additionally
    # assumes spill-subtree costs local to the spilled dimension;
    # SyntheticSpace models a spill subtree as a fraction of the FULL
    # plan cost at the truth, so a plan whose cost at the truth is far
    # above the optimum can defer spill completion past the oracle's
    # contour -- the tight r < 2 ladders then lose the slack the
    # doubling ladder provides (observed: D=3, r=1.5, MSO 24.2 > 18).

    def test_spillbound_within_guarantee(self, instance):
        seed, space, _ratio, _contours = instance
        algorithm = SpillBound(space, ContourSet(space, ratio=2.0))
        bound = algorithm.mso_guarantee()
        dims = space.query.dimensions
        assert bound == pytest.approx(dims ** 2 + 3 * dims), \
            "seed %d: doubling-ladder guarantee is D^2+3D" % seed
        sweep = exhaustive_sweep(algorithm)
        assert sweep.mso <= bound + 1e-9, \
            "seed %d: SpillBound MSO %.4f exceeds D^2+3D = %.4f (D=%d)" \
            % (seed, sweep.mso, bound, dims)

    def test_alignedbound_within_spillbound_guarantee(self, instance):
        seed, space, _ratio, _contours = instance
        sweep = exhaustive_sweep(
            AlignedBound(space, ContourSet(space, ratio=2.0)))
        bound = spillbound_guarantee(space.query.dimensions)
        assert sweep.mso <= bound + 1e-9, \
            "seed %d: AlignedBound MSO %.4f exceeds SpillBound bound " \
            "%.4f (D=%d)" % (seed, sweep.mso, bound,
                             space.query.dimensions)

    def test_planbouquet_within_guarantee(self, instance):
        # PB's 4(1+lambda)rho constant comes from the *doubling* ladder
        # (r^2/(r-1) is minimised at r=2), so it runs on ratio-2
        # contours regardless of the instance's drawn ratio.
        seed, space, _ratio, _contours = instance
        algorithm = PlanBouquet(space, ContourSet(space, ratio=2.0))
        sweep = exhaustive_sweep(algorithm)
        bound = algorithm.mso_guarantee()
        assert sweep.mso <= bound + 1e-9, \
            "seed %d: PlanBouquet MSO %.4f exceeds 4(1+lam)rho = %.4f" \
            % (seed, sweep.mso, bound)

    def test_contour_ladder_monotone(self, instance):
        seed, space, ratio, contours = instance
        costs = list(contours.costs)
        assert all(b > a for a, b in zip(costs, costs[1:])), \
            "seed %d: contour ladder not increasing: %r" % (seed, costs)
        assert costs[0] <= space.c_min + 1e-9, \
            "seed %d: first contour %.4f above c_min %.4f" \
            % (seed, costs[0], space.c_min)
        assert costs[-1] >= space.c_max - 1e-9, \
            "seed %d: ladder stops at %.4f below c_max %.4f" \
            % (seed, costs[-1], space.c_max)
