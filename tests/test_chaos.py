"""Chaos tests: real SIGKILLs against a journaled sweep subprocess.

These are the end-to-end teeth of the durability layer. A genuine
``python -m repro sweep --journal`` child is killed with SIGKILL at
seeded points of journal progress and resumed; the recovered grids must
be bit-identical to an uninterrupted run's and no committed unit may
ever re-execute. Also covers the cross-process reproducibility of
seeded fault schedules (the property that makes chaos runs repeatable
at all).
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.engine.faulty import FaultPlan, FaultyEngine
from repro.engine.simulated import SimulatedEngine
from repro.robustness import chaos

WORKLOAD = "2D_Q91"
RESOLUTION = 10
SAMPLE = 16
ALGORITHMS = ("planbouquet", "spillbound", "alignedbound")


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (chaos.src_path(), env.get("PYTHONPATH")) if p)
    return env


def _clean_grids(tmp_path):
    """Grids from one uninterrupted journaled run of the same sweep."""
    journal_dir = str(tmp_path / "clean-journal")
    proc = subprocess.run(
        chaos.sweep_command(journal_dir, WORKLOAD, RESOLUTION, SAMPLE,
                            ALGORITHMS),
        env=_subprocess_env(),
        capture_output=True, timeout=chaos.WAIT_TIMEOUT)
    assert proc.returncode == 0, proc.stderr.decode()
    return chaos.journal_grids(journal_dir)


@pytest.mark.slow
def test_sigkill_recovery_is_bit_identical(tmp_path):
    outcome = chaos.run_chaos(str(tmp_path / "journal"),
                              workload=WORKLOAD,
                              resolution=RESOLUTION, sample=SAMPLE,
                              algorithms=ALGORITHMS, kills=3, seed=0)
    # The harness must have landed real kills mid-sweep, each after
    # observable journal progress.
    assert outcome.kills >= 3
    assert len(outcome.kill_records) == outcome.kills
    assert all(n > 0 for n in outcome.kill_records)
    # Exactly-once: no committed unit was re-executed after its COMMIT.
    assert outcome.problems == []
    # Every unit of the sweep completed despite the kills.
    assert len(outcome.grids) == len(ALGORITHMS)
    # Bit-identical to an uninterrupted run: COMMIT payloads round-trip
    # floats exactly, so recovery must not perturb a single ULP.
    clean = _clean_grids(tmp_path)
    assert sorted(clean) == sorted(outcome.grids)
    for unit, grid in clean.items():
        assert np.array_equal(grid, outcome.grids[unit]), unit


@pytest.mark.slow
def test_sigkill_mid_parallel_sweep_recovers(tmp_path):
    """SIGKILL lands on the *parent* of a --workers sweep: its forked
    workers die with it (broken pipes), yet only the parent ever writes
    the journal, so resume gives the same exactly-once, bit-identical
    recovery the serial chaos run guarantees."""
    outcome = chaos.run_chaos(str(tmp_path / "journal"),
                              workload=WORKLOAD,
                              resolution=RESOLUTION, sample=SAMPLE,
                              algorithms=ALGORITHMS, kills=2, seed=1,
                              workers=2)
    assert outcome.kills >= 1
    assert all(n > 0 for n in outcome.kill_records)
    assert outcome.problems == []
    assert len(outcome.grids) == len(ALGORITHMS)
    clean = _clean_grids(tmp_path)
    assert sorted(clean) == sorted(outcome.grids)
    for unit, grid in clean.items():
        assert np.array_equal(grid, outcome.grids[unit]), unit


def test_verify_single_execution_flags_reexecution(tmp_path):
    from repro.robustness.durable import SweepJournal

    journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
    journal.open(config={"id": 1})
    journal.begin("q/a")
    journal.commit("q/a", {"ok": True})
    # Forge the violation the checker exists to catch.
    journal._append({"type": "begin", "unit": "q/a"})
    journal.close()
    problems = chaos.verify_single_execution(str(tmp_path / "journal"))
    assert len(problems) == 1
    assert "re-executed" in problems[0]


def test_journal_records_tolerates_absence(tmp_path):
    assert chaos.journal_records(str(tmp_path / "nowhere")) == []


# ----------------------------------------------------------------------
# fault-schedule reproducibility across process boundaries


SCHEDULE_PROG = """\
import json, sys
from repro.engine.faulty import FaultPlan
plan = FaultPlan.from_dict(json.loads(sys.argv[1]))
print(json.dumps(plan.schedule(int(sys.argv[2]), mode=sys.argv[3],
                               resolution=20)))
"""


@pytest.mark.parametrize("mode", ["execute", "spill"])
@pytest.mark.parametrize("seed", [0, 7, 23])
def test_fault_schedule_reproduces_across_processes(mode, seed):
    plan = FaultPlan(crash_rate=0.2, transient_rate=0.15,
                     corruption_rate=0.1, drift_rate=0.3,
                     drift_factor=1.4, seed=seed,
                     crash_on_calls=(5,), transient_on_calls=(2,))
    local = plan.schedule(40, mode=mode, resolution=20)
    proc = subprocess.run(
        [sys.executable, "-c", SCHEDULE_PROG,
         json.dumps(plan.to_dict()), "40", mode],
        env=_subprocess_env(), capture_output=True, timeout=60)
    assert proc.returncode == 0, proc.stderr.decode()
    remote = json.loads(proc.stdout)
    # JSON round-trips the floats exactly, so equality is exact.
    assert remote == json.loads(json.dumps(local))


def test_fault_plan_round_trips_through_dict():
    plan = FaultPlan(crash_rate=0.25, drift_rate=0.5, seed=11,
                     crash_on_calls=(3, 9))
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.to_dict() == plan.to_dict()
    assert clone.schedule(10) == plan.schedule(10)


def test_schedule_matches_engine_behaviour(toy_space):
    """The advertised schedule is what FaultyEngine actually injects."""
    plan = FaultPlan(crash_rate=0.3, transient_rate=0.2,
                     drift_rate=0.4, seed=13)
    predicted = plan.schedule(30, mode="execute")
    clean = SimulatedEngine(toy_space, (3, 7))
    faulty = FaultyEngine(toy_space, (3, 7), plan=plan)
    plan_info = toy_space.plans[0]
    budget = plan_info.cost[(3, 7)] * 2.0
    for decision in predicted:
        baseline = clean.execute(plan_info, budget)
        try:
            outcome = faulty.execute(plan_info, budget)
        except Exception as exc:
            kind = type(exc).__name__
            observed = {"TransientEngineError": "transient",
                        "EngineCrashError": "crash"}[kind]
            assert decision["fault"] == observed, decision
            continue
        if decision["fault"] == "drift":
            expected = baseline.spent * decision["drift_factor"]
            assert outcome.spent == pytest.approx(expected)
        else:
            assert decision["fault"] is None, decision
            assert outcome.spent == baseline.spent
