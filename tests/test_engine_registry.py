"""Tests for the declarative engine registry and spec grammar.

The registry is a naming layer, not a new semantics: every spec must
build engines whose fault-free runs are execution-identical to the
hand-built composition it replaces.
"""

import pytest

from repro.algorithms.spillbound import SpillBound
from repro.catalog.datagen import generate_database
from repro.catalog.schema import Catalog, Column, Table
from repro.common.errors import DiscoveryError
from repro.engine.faulty import FaultPlan, FaultyEngine
from repro.engine.noisy import NoisyEngine
from repro.engine.simulated import SimulatedEngine
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.executor.rowengine import RowBackedEngine
from repro.query.query import Query, make_filter, make_join
from repro.session import BASE_ENGINES, ENGINE_LAYERS, EngineSpec


class TestParsing:
    def test_bare_base(self):
        spec = EngineSpec.parse("simulated")
        assert spec.base == "simulated"
        assert spec.base_args == {}
        assert spec.layers == ()

    def test_layers_and_arguments(self):
        spec = EngineSpec.parse(
            "simulated+noisy(delta=0.3,seed=13)+faulty(crash=0.2)")
        assert spec.layers == (
            ("noisy", {"delta": 0.3, "seed": 13.0}),
            ("faulty", {"crash": 0.2}),
        )

    def test_leading_plus_implies_simulated(self):
        assert EngineSpec.parse("+faulty(crash=0.2)") == \
            EngineSpec.parse("simulated+faulty(crash=0.2)")

    def test_describe_roundtrips(self):
        for text in ("simulated",
                     "row(delta=1)",
                     "simulated+noisy(delta=0.3,seed=13)",
                     "vectorized(delta=0.5)",
                     "simulated+noisy(delta=0.1)+faulty(crash=0.2,seed=5)"):
            spec = EngineSpec.parse(text)
            again = EngineSpec.parse(spec.describe())
            assert again == spec
            assert again.describe() == spec.describe()

    def test_spec_instance_passes_through(self):
        spec = EngineSpec.parse("simulated")
        assert EngineSpec.parse(spec) is spec

    def test_registry_has_builtin_vocabulary(self):
        assert {"simulated", "row", "vectorized"} <= set(BASE_ENGINES)
        assert {"noisy", "faulty"} <= set(ENGINE_LAYERS)

    @pytest.mark.parametrize("bad", [
        "", "   ", "warp_drive", "simulated+telepathy()",
        "simulated+noisy(delta)", "simulated+noisy(delta=lots)",
        "simulated+noisy(delta=0.3", "simulated++noisy()",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(DiscoveryError):
            EngineSpec.parse(bad)

    def test_unknown_layer_arguments_rejected(self, toy_space):
        qa = (3, 3)
        with pytest.raises(DiscoveryError, match="noisy"):
            EngineSpec.parse("simulated+noisy(volume=11)").build(
                toy_space, qa_index=qa)
        with pytest.raises(DiscoveryError, match="faulty"):
            EngineSpec.parse("simulated+faulty(explode=1)").build(
                toy_space, qa_index=qa)

    def test_noisy_cannot_wrap_non_simulated(self, toy_space):
        with pytest.raises(DiscoveryError, match="noisy"):
            EngineSpec.parse("simulated+faulty()+noisy()").build(
                toy_space, qa_index=(3, 3))


def run_trace(space, contours, engine):
    result = SpillBound(space, contours).run(engine.qa_index,
                                             engine=engine)
    return [(r.contour, r.plan_id, r.mode, r.budget, r.spent,
             r.completed) for r in result.executions]


@pytest.fixture(scope="module")
def registry_row_setup():
    catalog = Catalog("regcat", [
        Table("fact", 3000, [
            Column("f_id", 3000),
            Column("f_d1", 80),
            Column("f_d2", 60),
            Column("f_val", 40, lo=0, hi=40),
        ]),
        Table("d1", 120, [Column("k1", 80)]),
        Table("d2", 90, [Column("k2", 60)]),
    ])
    query = Query(
        "registry_q", catalog,
        ["fact", "d1", "d2"],
        [
            make_join("j1", "fact.f_d1", "d1.k1"),
            make_join("j2", "fact.f_d2", "d2.k2"),
        ],
        [make_filter("f", "fact.f_val", "<", 20)],
        epps=("j1", "j2"),
    )
    database = generate_database(
        catalog, rng=9, skew={"fact.f_d1": 1.5, "d1.k1": 1.0})
    space = ExplorationSpace(query, resolution=12, s_min=1e-5)
    space.build(mode="exact")
    return database, space, ContourSet(space)


class TestExecutionIdentical:
    """Every registry combination == its hand-built composition."""

    QA = (10, 12)

    def test_simulated(self, toy_space, toy_contours):
        built = EngineSpec.parse("simulated").build(
            toy_space, qa_index=self.QA)
        hand = SimulatedEngine(toy_space, self.QA)
        assert run_trace(toy_space, toy_contours, built) == \
            run_trace(toy_space, toy_contours, hand)

    def test_noisy(self, toy_space, toy_contours):
        built = EngineSpec.parse(
            "simulated+noisy(delta=0.3,seed=13)").build(
            toy_space, qa_index=self.QA)
        hand = NoisyEngine(toy_space, self.QA, delta=0.3, seed=13)
        assert run_trace(toy_space, toy_contours, built) == \
            run_trace(toy_space, toy_contours, hand)

    def test_faulty_clean_plan(self, toy_space, toy_contours):
        built = EngineSpec.parse("simulated+faulty(seed=5)").build(
            toy_space, qa_index=self.QA)
        hand = FaultyEngine(toy_space, self.QA, plan=FaultPlan(seed=5))
        trace = run_trace(toy_space, toy_contours, built)
        assert trace == run_trace(toy_space, toy_contours, hand)
        # A fault-free plan is also execution-identical to no wrapper.
        assert trace == run_trace(
            toy_space, toy_contours, SimulatedEngine(toy_space, self.QA))

    def test_noisy_plus_faulty(self, toy_space, toy_contours):
        built = EngineSpec.parse(
            "simulated+noisy(delta=0.2,seed=7)+faulty(seed=3)").build(
            toy_space, qa_index=self.QA)
        hand = FaultyEngine(
            toy_space, self.QA, plan=FaultPlan(seed=3),
            base=NoisyEngine(toy_space, self.QA, delta=0.2, seed=7))
        assert run_trace(toy_space, toy_contours, built) == \
            run_trace(toy_space, toy_contours, hand)

    def test_faulty_plan_override(self, toy_space, toy_contours):
        plan = FaultPlan(drift_rate=0.4, drift_factor=1.5, seed=11)
        built = EngineSpec.parse("simulated+faulty()").build(
            toy_space, qa_index=self.QA, plan=plan)
        hand = FaultyEngine(toy_space, self.QA, plan=plan)
        assert built.plan is plan
        assert run_trace(toy_space, toy_contours, built) == \
            run_trace(toy_space, toy_contours, hand)

    def test_row_backed(self, registry_row_setup):
        database, space, contours = registry_row_setup
        built = EngineSpec.parse("row(delta=1)").build(
            space, database=database)
        hand = RowBackedEngine(space, database, delta=1.0)
        assert built.qa_index == hand.qa_index
        assert run_trace(space, contours, built) == \
            run_trace(space, contours, hand)

    def test_vectorized(self, registry_row_setup):
        from repro.executor.vectorized import VectorEngine
        database, space, contours = registry_row_setup
        built = EngineSpec.parse("vectorized(delta=1)").build(
            space, database=database)
        hand = RowBackedEngine(space, database,
                               executor_cls=VectorEngine, delta=1.0)
        assert built.qa_index == hand.qa_index
        assert run_trace(space, contours, built) == \
            run_trace(space, contours, hand)

    def test_row_needs_database(self, registry_row_setup):
        _database, space, _contours = registry_row_setup
        with pytest.raises(DiscoveryError, match="database"):
            EngineSpec.parse("row()").build(space)


class TestBackendSpecs:
    """``row(backend=...)`` vocabulary: parse, round-trip, build."""

    def test_backend_argument_round_trips(self):
        for text in ("row(backend=sqlite)",
                     "row(backend=sqlite,delta=1)",
                     "row(backend=native,delta=0.5)",
                     "row(backend=vectorized)"):
            spec = EngineSpec.parse(text)
            again = EngineSpec.parse(spec.describe())
            assert again == spec
            assert "backend=" in spec.describe()

    def test_backend_argument_stays_a_string(self):
        spec = EngineSpec.parse("row(backend=sqlite,delta=1)")
        assert spec.base_args == {"backend": "sqlite", "delta": 1.0}

    def test_non_whitelisted_string_values_still_rejected(self):
        with pytest.raises(DiscoveryError):
            EngineSpec.parse("row(delta=lots)")

    @pytest.mark.parametrize("backend", ["native", "vectorized", "sqlite"])
    def test_builds_the_named_backend(self, registry_row_setup, backend):
        database, space, _contours = registry_row_setup
        built = EngineSpec.parse("row(backend=%s,delta=1)" % backend).build(
            space, database=database)
        assert isinstance(built, RowBackedEngine)
        assert built.backend_name == backend

    def test_sqlite_spec_is_execution_identical_to_handbuilt(
            self, registry_row_setup):
        database, space, contours = registry_row_setup
        built = EngineSpec.parse("row(backend=sqlite,delta=1)").build(
            space, database=database)
        hand = RowBackedEngine(space, database, backend="sqlite",
                               delta=1.0)
        assert built.qa_index == hand.qa_index
        assert run_trace(space, contours, built) == \
            run_trace(space, contours, hand)

    def test_unknown_backend_rejected(self, registry_row_setup):
        database, space, _contours = registry_row_setup
        with pytest.raises(DiscoveryError, match="backend"):
            EngineSpec.parse("row(backend=duckdb)").build(
                space, database=database)

    def test_vectorized_base_refuses_backend_argument(
            self, registry_row_setup):
        database, space, _contours = registry_row_setup
        with pytest.raises(DiscoveryError, match="vectorized"):
            EngineSpec.parse("vectorized(backend=sqlite)").build(
                space, database=database)

    def test_database_spec_resolves_at_build_time(self, registry_row_setup):
        from repro.catalog.datagen import DatabaseSpec
        _database, space, contours = registry_row_setup
        spec = DatabaseSpec(rng=9, skew={"fact.f_d1": 1.5, "d1.k1": 1.0})
        built = EngineSpec.parse("row(backend=sqlite,delta=1)").build(
            space, database=spec)
        hand = RowBackedEngine(space, spec, backend="sqlite", delta=1.0)
        assert built.qa_index == hand.qa_index
        assert run_trace(space, contours, built) == \
            run_trace(space, contours, hand)
