"""Shared fixtures: toy catalogs, small exactly-built exploration spaces.

Spaces are expensive to build, so the heavyweight fixtures are
session-scoped; tests must not mutate them (algorithms never do -- all
run state lives in per-run objects).
"""

import os
import random

import pytest

from repro.catalog.schema import Catalog, Column, Table
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.harness.workloads import workload
from repro.query.query import Query, make_filter, make_join


def pytest_collection_modifyitems(config, items):
    """Shuffle test order when ``REPRO_TEST_ORDER_SEED`` is set.

    Every test must pass in any order -- session-scoped fixtures are
    shared but immutable, and nothing may leak through module globals
    or the default session. CI runs the suite both in file order and
    under a seeded shuffle so order-dependence fails loudly instead of
    hiding behind the conventional ordering. Reproduce a CI failure
    with the same seed::

        REPRO_TEST_ORDER_SEED=42 python -m pytest -q
    """
    seed = os.environ.get("REPRO_TEST_ORDER_SEED")
    if not seed:
        return
    random.Random(int(seed)).shuffle(items)


@pytest.fixture(scope="session")
def toy_catalog():
    """A small 4-table star/chain catalog with fast-to-enumerate plans."""
    return Catalog(
        "toy",
        [
            Table("fact", 1_000_000, [
                Column("f_id", 1_000_000),
                Column("f_dim1", 10_000),
                Column("f_dim2", 5_000),
                Column("f_val", 1_000, lo=0, hi=1_000),
            ]),
            Table("dim1", 10_000, [
                Column("d1_id", 10_000),
                Column("d1_attr", 100, lo=0, hi=100),
            ]),
            Table("dim2", 5_000, [
                Column("d2_id", 5_000),
                Column("d2_link", 200),
                Column("d2_attr", 50, lo=0, hi=50),
            ]),
            Table("dim3", 2_000, [
                Column("d3_id", 200),
                Column("d3_attr", 20, lo=0, hi=20),
            ]),
        ],
    )


@pytest.fixture(scope="session")
def toy_query(toy_catalog):
    """fact -> dim1, fact -> dim2 -> dim3 with two error-prone joins."""
    return Query(
        "toy_2d", toy_catalog,
        ["fact", "dim1", "dim2", "dim3"],
        [
            make_join("j1", "fact.f_dim1", "dim1.d1_id"),
            make_join("j2", "fact.f_dim2", "dim2.d2_id"),
            make_join("j3", "dim2.d2_link", "dim3.d3_id"),
        ],
        [make_filter("f1", "fact.f_val", "<", 100)],
        epps=("j1", "j2"),
    )


@pytest.fixture(scope="session")
def toy_query_3d(toy_catalog):
    """Same query with all three joins error-prone."""
    return Query(
        "toy_3d", toy_catalog,
        ["fact", "dim1", "dim2", "dim3"],
        [
            make_join("j1", "fact.f_dim1", "dim1.d1_id"),
            make_join("j2", "fact.f_dim2", "dim2.d2_id"),
            make_join("j3", "dim2.d2_link", "dim3.d3_id"),
        ],
        [make_filter("f1", "fact.f_val", "<", 100)],
        epps=("j1", "j2", "j3"),
    )


@pytest.fixture(scope="session")
def toy_space(toy_query):
    """Exactly-built 2D space on a 16x16 grid (ground truth POSP)."""
    space = ExplorationSpace(toy_query, resolution=16, s_min=1e-5)
    return space.build(mode="exact")


@pytest.fixture(scope="session")
def toy_space_3d(toy_query_3d):
    """Exactly-built 3D space on an 8^3 grid."""
    space = ExplorationSpace(toy_query_3d, resolution=8, s_min=1e-5)
    return space.build(mode="exact")


@pytest.fixture(scope="session")
def toy_contours(toy_space):
    return ContourSet(toy_space)


@pytest.fixture(scope="session")
def toy_contours_3d(toy_space_3d):
    return ContourSet(toy_space_3d)


@pytest.fixture(scope="session")
def q91_2d_space():
    """TPC-DS Q91 with two epps, exactly built at modest resolution."""
    space = ExplorationSpace(workload("2D_Q91"), resolution=20)
    return space.build(mode="exact")


@pytest.fixture(scope="session")
def q91_2d_contours(q91_2d_space):
    return ContourSet(q91_2d_space)
