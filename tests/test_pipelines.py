"""Tests for pipeline decomposition and spill-node identification (§3.1)."""

from repro.plans.nodes import (
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    finalize_plan,
)
from repro.plans.pipelines import (
    decompose_pipelines,
    epp_total_order,
    spill_epp,
)


def left_deep_hash(tables, predicates):
    """Left-deep all-hash-join plan: ((t0 x t1) x t2) x ..."""
    plan = SeqScan(tables[0])
    for table, predicate in zip(tables[1:], predicates):
        plan = HashJoin(plan, SeqScan(table), (predicate,))
    return finalize_plan(plan)


class TestDecomposition:
    def test_hash_build_is_separate_pipeline(self):
        plan = left_deep_hash(["a", "b"], ["j1"])
        pipelines = decompose_pipelines(plan)
        assert len(pipelines) == 2
        # Build side (scan of b) runs first; probe pipeline holds the join.
        assert pipelines[0].nodes[0].table == "b"
        assert pipelines[1].nodes[0].table == "a"
        assert pipelines[1].nodes[1].kind == "HashJoin"

    def test_left_deep_chain_single_probe_pipeline(self):
        plan = left_deep_hash(["a", "b", "c", "d"], ["j1", "j2", "j3"])
        pipelines = decompose_pipelines(plan)
        # 3 build pipelines + 1 probe pipeline containing all joins.
        assert len(pipelines) == 4
        probe = pipelines[-1]
        assert [n.kind for n in probe.nodes] == \
            ["SeqScan", "HashJoin", "HashJoin", "HashJoin"]

    def test_merge_join_blocks_both_sides(self):
        plan = finalize_plan(MergeJoin(SeqScan("a"), SeqScan("b"), ("j",)))
        pipelines = decompose_pipelines(plan)
        assert len(pipelines) == 3
        assert pipelines[-1].nodes[0].kind == "MergeJoin"

    def test_nl_join_materialises_inner_first(self):
        plan = finalize_plan(
            NestedLoopJoin(SeqScan("a"), SeqScan("b"), ("j",)))
        pipelines = decompose_pipelines(plan)
        assert len(pipelines) == 2
        assert pipelines[0].nodes[0].table == "b"

    def test_orders_assigned_sequentially(self):
        plan = left_deep_hash(["a", "b", "c"], ["j1", "j2"])
        pipelines = decompose_pipelines(plan)
        assert [p.order for p in pipelines] == list(range(len(pipelines)))


class TestEppTotalOrder:
    def test_intra_pipeline_upstream_first(self):
        # In a left-deep chain, the bottom join is most upstream.
        plan = left_deep_hash(["a", "b", "c", "d"], ["j1", "j2", "j3"])
        order = [name for name, _ in
                 epp_total_order(plan, ["j1", "j2", "j3"])]
        assert order == ["j1", "j2", "j3"]

    def test_inter_pipeline_order(self):
        # Merge join at the top: its left subtree pipeline finishes
        # before the merge pipeline starts, so j1 precedes j2.
        inner = HashJoin(SeqScan("a"), SeqScan("b"), ("j1",))
        plan = finalize_plan(MergeJoin(inner, SeqScan("c"), ("j2",)))
        order = [name for name, _ in epp_total_order(plan, ["j1", "j2"])]
        assert order == ["j1", "j2"]

    def test_restricted_to_requested_epps(self):
        plan = left_deep_hash(["a", "b", "c"], ["j1", "j2"])
        order = [name for name, _ in epp_total_order(plan, ["j2"])]
        assert order == ["j2"]

    def test_residual_predicates_not_spillable(self):
        plan = finalize_plan(
            HashJoin(SeqScan("a"), SeqScan("b"), ("j1", "jres")))
        assert epp_total_order(plan, ["jres"]) == []


class TestSpillEpp:
    def test_first_unresolved_selected(self):
        plan = left_deep_hash(["a", "b", "c"], ["j1", "j2"])
        name, node = spill_epp(plan, {"j1", "j2"})
        assert name == "j1"
        assert node.primary_predicate == "j1"

    def test_resolution_advances_target(self):
        plan = left_deep_hash(["a", "b", "c"], ["j1", "j2"])
        name, _node = spill_epp(plan, {"j2"})
        assert name == "j2"

    def test_none_when_no_spillable_epp(self):
        plan = left_deep_hash(["a", "b"], ["j1"])
        assert spill_epp(plan, {"other"}) is None

    def test_purity_skips_contaminated_subtrees(self):
        # j2's node contains unresolved residual predicate jres in its
        # subtree: spilling on j2 would not satisfy Lemma 3.1.
        bottom = HashJoin(SeqScan("a"), SeqScan("b"), ("j1", "jres"))
        plan = finalize_plan(HashJoin(bottom, SeqScan("c"), ("j2",)))
        choice = spill_epp(plan, {"j2", "jres"})
        assert choice is None
        # Once jres is resolved, j2 becomes spillable.
        name, _ = spill_epp(plan, {"j2"})
        assert name == "j2"
