"""Tests for the observability layer: tracer, metrics, trace reports.

The load-bearing acceptance property lives in
:class:`TestFaultyRoundTrip`: a SpillBound run on a fault-injecting
engine writes a JSONL trace whose every record re-parses bit-identically
and whose per-contour spend decomposition sums *exactly* (``==``, not
approx) to the run's ``total_cost``.
"""

import numpy as np
import pytest

from repro.algorithms.base import RobustAlgorithm
from repro.algorithms.planbouquet import PlanBouquet
from repro.algorithms.spillbound import SpillBound
from repro.engine.faulty import FaultPlan, FaultyEngine
from repro.obs import (
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    answering_run,
    decompose,
    read_trace,
    render_trace_report,
)
from repro.robustness import DiscoveryGuard, RetryPolicy
from repro.robustness.durable import SweepJournal
from repro.session.sweep import _sweep_from_payload, _sweep_payload


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.begin_run("x", (0, 0)) == 0
        tracer.event("execution", spent=1.0)
        tracer.end_run()
        tracer.close()
        with tracer.span("phase"):
            pass

    def test_is_the_default_on_algorithms(self):
        assert RobustAlgorithm.tracer is NULL_TRACER

    def test_set_tracer_none_restores_null(self, toy_space, toy_contours):
        algo = SpillBound(toy_space, toy_contours)
        algo.set_tracer(Tracer())
        assert algo.tracer.enabled
        algo.set_tracer(None)
        assert algo.tracer is NULL_TRACER


class TestTracer:
    def test_seq_and_type(self):
        tracer = Tracer()
        tracer.event("alpha", x=1)
        tracer.event("beta", y="s")
        assert [r["seq"] for r in tracer.records] == [1, 2]
        assert [r["type"] for r in tracer.records] == ["alpha", "beta"]

    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("inside")
            with tracer.span("inner"):
                tracer.event("deep")
        tracer.event("after")
        by_type = {r["type"]: r for r in tracer.records}
        assert by_type["inside"]["span"] == 1
        assert by_type["deep"]["span"] == 2
        assert by_type["after"]["span"] == 0
        ends = [r for r in tracer.records if r["type"] == "span-end"]
        assert [e["name"] for e in ends] == ["inner", "outer"]
        assert all(e["dur"] >= 0.0 for e in ends)

    def test_run_bracketing(self):
        tracer = Tracer()
        tracer.event("before")
        run = tracer.begin_run("spillbound", (3, 4))
        tracer.event("execution", spent=1.0)
        tracer.end_run(total_cost=1.0)
        tracer.event("after")
        assert run == 1
        by_type = {r["type"]: r for r in tracer.records}
        assert by_type["before"]["run"] == 0
        assert by_type["execution"]["run"] == 1
        assert by_type["after"]["run"] == 0
        assert by_type["run-start"]["qa_index"] == [3, 4]

    def test_scrubs_numpy_and_nonfinite(self):
        tracer = Tracer()
        record = tracer.event(
            "execution", spent=np.float64(2.5), ok=np.bool_(True),
            idx=np.int64(7), bad=float("inf"),
            nested={"v": np.float64(1.0)}, seq_like=(np.int64(1), 2))
        assert record["spent"] == 2.5 and type(record["spent"]) is float
        assert record["ok"] is True
        assert record["idx"] == 7 and type(record["idx"]) is int
        assert record["bad"] == "inf"
        assert record["nested"] == {"v": 1.0}
        assert record["seq_like"] == [1, 2]

    def test_event_counters(self):
        tracer = Tracer()
        tracer.event("execution")
        tracer.event("execution")
        tracer.event("retry")
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["events.execution"] == 2
        assert counters["events.retry"] == 1


class TestTraceFile:
    def test_round_trip_bit_identical(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            tracer.begin_run("x", (1, 2))
            tracer.event("execution", spent=0.1 + 0.2, plan_id=3)
            tracer.end_run(total_cost=0.1 + 0.2)
        assert read_trace(path) == tracer.records

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            tracer.event("alpha")
            tracer.event("beta")
        with open(path, "a") as handle:
            handle.write("deadbeef {\"torn\":")  # no newline: mid-append
        assert [r["type"] for r in read_trace(path)] == ["alpha", "beta"]

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            tracer.event("alpha")
        with open(path) as handle:
            good = handle.read()
        with open(path, "w") as handle:
            handle.write("00000000 {}\n" + good)
        with pytest.raises(ValueError):
            read_trace(path)


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        assert registry.counter("c").value == 3.5
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_histogram_aggregates(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert h.to_dict() == {"count": 3, "total": 6.0,
                               "min": 1.0, "max": 3.0}
        assert Histogram.from_dict(h.to_dict()).to_dict() == h.to_dict()
        assert Histogram().to_dict() == {"count": 0, "total": 0.0,
                                         "min": None, "max": None}

    def test_merge_is_additive(self):
        a = MetricsRegistry()
        a.counter("executions").inc(3)
        a.gauge("level").set(1)
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.counter("executions").inc(4)
        b.gauge("level").set(2)
        b.histogram("h").observe(5.0)
        merged = MetricsRegistry.from_snapshot(a.snapshot())
        merged.merge(b.snapshot())
        snap = merged.snapshot()
        assert snap["counters"]["executions"] == 7
        assert snap["gauges"]["level"] == 2  # last write wins
        assert snap["histograms"]["h"] == {"count": 2, "total": 6.0,
                                           "min": 1.0, "max": 5.0}


class TestTracedRun:
    def test_events_and_obs_snapshot(self, toy_space, toy_contours):
        tracer = Tracer()
        algo = SpillBound(toy_space, toy_contours).set_tracer(tracer)
        result = algo.run((8, 8))
        types = {r["type"] for r in tracer.records}
        assert {"run-start", "run-end", "execution"} <= types
        execs = [r for r in tracer.records if r["type"] == "execution"]
        assert len(execs) == len(result.executions)
        obs = result.extras["obs"]
        assert obs["counters"]["executions"] == len(result.executions)

    def test_tracing_changes_no_results(self, toy_space, toy_contours):
        plain = SpillBound(toy_space, toy_contours).run((8, 8))
        traced = SpillBound(toy_space, toy_contours) \
            .set_tracer(Tracer()).run((8, 8))
        assert traced.total_cost == plain.total_cost
        assert traced.sub_optimality == plain.sub_optimality
        assert len(traced.executions) == len(plain.executions)
        assert "obs" not in plain.extras

    def test_decomposition_matches_total_exactly(
            self, toy_space, toy_contours):
        tracer = Tracer()
        algo = PlanBouquet(toy_space, toy_contours).set_tracer(tracer)
        result = algo.run((12, 3))
        parts = decompose(tracer.records)
        assert parts["total"] == result.total_cost
        assert parts["total_cost"] == result.total_cost
        assert sum(c["executions"] for c in parts["contours"]) == \
            len(result.executions)


class TestGuardTracing:
    def test_retry_and_degrade_events(self, toy_space, toy_contours):
        tracer = Tracer()
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               policy=RetryPolicy(max_retries=1))
        guard.set_tracer(tracer)
        engine = FaultyEngine(toy_space, (8, 8),
                              plan=FaultPlan(transient_rate=1.0))
        result = guard.run((8, 8), engine=engine)
        assert result.extras["degraded"] is True
        types = [r["type"] for r in tracer.records]
        assert types.count("retry") == 2
        assert "degrade" in types
        obs = result.extras["obs"]
        assert obs["counters"]["guard.retries"] == 2
        assert obs["counters"]["guard.degraded"] == 1

    def test_degraded_decomposition_uses_answering_run(
            self, toy_space, toy_contours):
        tracer = Tracer()
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               policy=RetryPolicy(max_retries=0))
        guard.set_tracer(tracer)
        engine = FaultyEngine(
            toy_space, (8, 8),
            plan=FaultPlan(crash_rate=1.0, transient_rate=0.0, seed=4))
        result = guard.run((8, 8), engine=engine)
        parts = decompose(tracer.records)
        # The discovery attempt crashed; only the fallback completed.
        assert answering_run(tracer.records) > 1
        assert parts["total"] == result.total_cost


class TestCacheAndJournalEvents:
    def test_cache_events(self, tmp_path):
        from repro.session import RobustSession
        tracer = Tracer()
        session = RobustSession(tracer=tracer)
        session.space("2D_Q91")
        session.space("2D_Q91")
        types = [r["type"] for r in tracer.records]
        assert "cache-miss" in types
        assert "cache-hit" in types
        hit = next(r for r in tracer.records if r["type"] == "cache-hit")
        assert hit["tier"] == "memory"
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.hit.memory"] >= 1

    def test_journal_commit_event(self, tmp_path):
        tracer = Tracer()
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        journal.tracer = tracer
        journal.open(config={"id": 1})
        unit = SweepJournal.unit_key("q", "spillbound")
        journal.begin(unit)
        journal.commit(unit, {"x": 1})
        journal.close()
        commits = [r for r in tracer.records
                   if r["type"] == "journal-commit"]
        assert len(commits) == 1
        assert commits[0]["unit"] == unit


class TestFaultyRoundTrip:
    """Acceptance: trace round-trip under fault injection (S4)."""

    def test_bit_identical_and_exact_decomposition(
            self, tmp_path, toy_space, toy_contours):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours))
        guard.set_tracer(tracer)
        plan = FaultPlan(crash_rate=0.2, transient_rate=0.1,
                         corruption_rate=0.1, drift_rate=0.1, seed=5)
        results = []
        for flat in range(0, toy_space.grid.size, 29):
            qa = toy_space.grid.unflat(flat)
            engine = FaultyEngine(toy_space, qa, plan=plan)
            results.append(guard.run(qa, engine=engine))
        tracer.close()

        replayed = read_trace(path)
        assert replayed == tracer.records  # bit-identical round-trip
        types = {r["type"] for r in replayed}
        assert "execution" in types and "run-end" in types
        assert "fault" in types  # adversity actually fired

        # The last answering run's spend decomposition reconciles
        # exactly (==, not approx) with the returned total.
        parts = decompose(replayed)
        assert parts["total"] == results[-1].total_cost

    def test_every_run_decomposes_exactly(self, toy_space, toy_contours):
        tracer = Tracer()
        algo = SpillBound(toy_space, toy_contours).set_tracer(tracer)
        totals = {}
        for qa in [(0, 0), (8, 8), (15, 15)]:
            run = tracer.runs + 1
            totals[run] = algo.run(qa).total_cost
        for run, total in totals.items():
            assert decompose(tracer.records, run=run)["total"] == total


class TestSweepDriverTracing:
    def test_trace_dir_and_aggregation(self, tmp_path):
        from repro.session import RobustSession, SweepDriver
        session = RobustSession()
        driver = SweepDriver(session, sample=3,
                             trace_dir=str(tmp_path / "traces"))
        records = list(driver.run(["2D_Q91"], ["spillbound"]))
        assert (tmp_path / "traces" / "2D_Q91-spillbound.jsonl").exists()
        trace = read_trace(
            str(tmp_path / "traces" / "2D_Q91-spillbound.jsonl"))
        assert sum(r["type"] == "run-end" for r in trace) == 3
        obs = driver.obs_summary()
        assert obs["counters"]["executions"] == \
            records[0].sweep.extras["obs"]["counters"]["executions"]
        # Tracing detaches after the unit: the instance is clean.
        assert records[0].instance.tracer is NULL_TRACER

    def test_payload_round_trips_sample_geometry(self):
        sweep = _sweep_from_payload(_sweep_payload(
            type("S", (), {
                "algorithm": "sb",
                "shape": (2,),
                "sub_optimalities": np.array([1.5, 2.5]),
                "extras": {"degraded": 0, "degraded_reasons": {}},
                "sample_flats": [7, 3],
                "grid_shape": (4, 4),
            })()))
        assert sweep.sample_flats == [7, 3]
        assert sweep.grid_shape == (4, 4)
        assert sweep.worst_location() == (0, 3)  # unravel(3, (4, 4))

    def test_payload_tolerates_legacy_journals(self):
        sweep = _sweep_from_payload({
            "algorithm": "sb", "shape": [2],
            "sub_optimalities": [1.0, 2.0], "extras": {}})
        assert sweep.sample_flats is None
        assert sweep.grid_shape is None


class TestTraceReport:
    def test_render_contains_sections(self, toy_space, toy_contours):
        tracer = Tracer()
        SpillBound(toy_space, toy_contours).set_tracer(tracer).run((8, 8))
        text = render_trace_report(tracer.records)
        assert "Execution timeline" in text
        assert "Budget waterfall" in text
        assert "MSO decomposition" in text
        assert "Event summary" in text

    def test_render_handles_empty_trace(self):
        text = render_trace_report([])
        assert "no completed discovery run" in text


class TestEngineTagging:
    """run-start events carry the execution substrate's name."""

    def test_simulated_runs_are_tagged(self, toy_space, toy_contours):
        from repro.engine.simulated import SimulatedEngine

        tracer = Tracer()
        algo = SpillBound(toy_space, toy_contours).set_tracer(tracer)
        algo.run((8, 8), engine=SimulatedEngine(toy_space, (8, 8)))
        starts = [r for r in tracer.records if r["type"] == "run-start"]
        assert starts and all(r["engine"] == "simulated" for r in starts)

    def test_engine_label_walks_wrapper_chains(self, toy_space):
        from repro.algorithms.base import engine_label
        from repro.engine.faulty import FaultPlan, FaultyEngine
        from repro.engine.latency import LatencyEngine
        from repro.engine.simulated import SimulatedEngine

        assert engine_label(None) == "simulated"
        base = SimulatedEngine(toy_space, (1, 1))
        assert engine_label(base) == "simulated"
        assert engine_label(LatencyEngine(base, ms=0.0)) == "simulated"
        assert engine_label(FaultyEngine(
            toy_space, (1, 1), plan=FaultPlan(seed=1))) == "simulated"

        class _Backend:
            backend_name = "sqlite"

        class _Wrapper:
            base = _Backend()

        assert engine_label(_Wrapper()) == "sqlite"
