"""Tests for the durability layer: crash-safe IO, the write-ahead sweep
journal, deadline watchdogs, circuit breakers and their wiring through
guard, session and sweep driver."""

import json
import os

import numpy as np
import pytest

from repro.common.atomicio import (
    FileLock,
    LockTimeoutError,
    atomic_write_json,
    decode_record,
    encode_record,
)
from repro.common.errors import DeadlineExceededError, JournalError
from repro.engine.faulty import FaultPlan, FaultyEngine
from repro.engine.simulated import SimulatedEngine
from repro.robustness import (
    CircuitBreaker,
    Deadline,
    DeadlineEngine,
    DiscoveryCheckpoint,
    DiscoveryGuard,
    RetryPolicy,
    SweepJournal,
    compose_deadlines,
)
from repro.session import BreakerBoard, RobustSession, SweepDriver


# ----------------------------------------------------------------------
# crash-safe primitives


class TestRecordFraming:
    def test_round_trip(self):
        payload = {"type": "commit", "unit": "q/alg",
                   "result": {"values": [1.5, 2.25, 1e-9]}}
        assert decode_record(encode_record(payload)) == payload

    def test_rejects_flipped_byte(self):
        line = encode_record({"type": "begin", "unit": "u"})
        corrupt = line.replace("begin", "bogus")
        with pytest.raises(ValueError):
            decode_record(corrupt)

    def test_rejects_torn_line(self):
        line = encode_record({"type": "begin", "unit": "u"})
        with pytest.raises(ValueError):
            decode_record(line[: len(line) // 2])

    def test_rejects_bad_framing(self):
        with pytest.raises(ValueError):
            decode_record("not a journal line\n")

    def test_rejects_non_object_payload(self):
        body = json.dumps([1, 2, 3])
        import zlib
        line = "%08x %s\n" % (
            zlib.crc32(body.encode()) & 0xFFFFFFFF, body)
        with pytest.raises(ValueError):
            decode_record(line)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = str(tmp_path / "state.json")
        atomic_write_json(target, {"v": 1}, fsync=False)
        atomic_write_json(target, {"v": 2}, fsync=False)
        with open(target) as handle:
            assert json.load(handle) == {"v": 2}
        # No temp litter left behind.
        assert os.listdir(str(tmp_path)) == ["state.json"]


class TestFileLock:
    def test_acquire_release(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        with lock:
            assert lock.held
            assert os.path.exists(lock.path)
        assert not lock.held
        assert not os.path.exists(lock.path)

    def test_contention_times_out(self, tmp_path):
        path = str(tmp_path / "x.lock")
        holder = FileLock(path).acquire()
        with pytest.raises(LockTimeoutError):
            FileLock(path, timeout=0.1, poll=0.01).acquire()
        holder.release()

    def test_dead_owner_lock_is_broken(self, tmp_path):
        path = str(tmp_path / "x.lock")
        # A PID far beyond pid_max: the owner cannot be alive, which is
        # exactly the state a SIGKILLed journal writer leaves behind.
        with open(path, "w") as handle:
            handle.write("999999999\n")
        lock = FileLock(path, timeout=0.5, poll=0.01)
        lock.acquire()
        assert lock.held
        lock.release()


# ----------------------------------------------------------------------
# deadline watchdog


def _fake_clock(times):
    it = iter(times)
    last = [None]

    def clock():
        try:
            last[0] = next(it)
        except StopIteration:
            pass
        return last[0]

    return clock


class TestDeadline:
    def test_wall_clock_expiry(self):
        deadline = Deadline(wall_limit=10.0,
                            clock=_fake_clock([0.0, 5.0, 10.5]))
        assert deadline.exceeded() is None       # t=5
        assert deadline.exceeded() == "wall_clock"  # t=10.5

    def test_cost_budget_expiry(self):
        deadline = Deadline(cost_limit=100.0, clock=lambda: 0.0)
        deadline.charge(60.0)
        assert deadline.exceeded() is None
        deadline.charge(60.0)
        assert deadline.exceeded() == "cost_budget"

    def test_check_raises_with_reason(self):
        deadline = Deadline(cost_limit=1.0, clock=lambda: 0.0)
        deadline.charge(2.0)
        with pytest.raises(DeadlineExceededError) as exc:
            deadline.check()
        assert exc.value.reason == "cost_budget"
        assert exc.value.spent == 2.0

    def test_unbounded_never_expires(self):
        deadline = Deadline(clock=lambda: 1e9)
        deadline.charge(1e12)
        assert deadline.exceeded() is None

    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError):
            Deadline(wall_limit=-1.0)
        with pytest.raises(ValueError):
            Deadline(cost_limit=-1.0)


class TestCompositeDeadline:
    """Nested budgets: client deadline composed with engine/sweep
    deadlines must enforce the *minimum* remaining budget and name the
    layer that fired."""

    def test_min_remaining_wall_wins(self):
        client = Deadline(wall_limit=10.0, clock=lambda: 0.0,
                          label="client")
        server = Deadline(wall_limit=3.0, clock=lambda: 0.0,
                          label="server")
        composed = compose_deadlines(client, server)
        assert composed.remaining_wall() == pytest.approx(3.0)
        assert composed.label == "server"

    def test_firing_layer_is_named(self):
        client = Deadline(wall_limit=5.0,
                          clock=_fake_clock([0.0] + [6.0] * 100),
                          label="client")
        sweep = Deadline(wall_limit=100.0, clock=lambda: 0.0,
                         label="sweep")
        composed = compose_deadlines(client, sweep)
        assert composed.exceeded() == "wall_clock"
        with pytest.raises(DeadlineExceededError) as exc:
            composed.check()
        assert exc.value.layer == "client"
        assert exc.value.reason == "wall_clock"

    def test_cost_charge_reaches_every_layer(self):
        a = Deadline(cost_limit=100.0, clock=lambda: 0.0, label="a")
        b = Deadline(cost_limit=50.0, clock=lambda: 0.0, label="b")
        composed = compose_deadlines(a, b)
        composed.charge(60.0)
        assert a.spent == 60.0
        assert b.spent == 60.0
        assert composed.exceeded() == "cost_budget"
        with pytest.raises(DeadlineExceededError) as exc:
            composed.check()
        assert exc.value.layer == "b"
        assert composed.remaining_cost() == pytest.approx(0.0)

    def test_compose_elides_none_and_singletons(self):
        only = Deadline(wall_limit=1.0)
        assert compose_deadlines(None, None) is None
        assert compose_deadlines(only, None) is only
        nested = compose_deadlines(
            compose_deadlines(Deadline(wall_limit=1.0, label="x"),
                              Deadline(wall_limit=2.0, label="y")),
            Deadline(wall_limit=3.0, label="z"))
        assert len(nested.parts) == 3

    def test_guard_reason_names_the_layer(self, toy_space,
                                          toy_contours):
        from repro.algorithms.spillbound import SpillBound

        client = Deadline(wall_limit=10.0,
                          clock=_fake_clock([0.0] + [11.0] * 1000),
                          label="client")
        server = Deadline(wall_limit=10**6, clock=lambda: 0.0,
                          label="server")
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               deadline=compose_deadlines(client,
                                                          server))
        result = guard.run((3, 7))
        assert result.extras["degraded"] is True
        assert result.extras["degraded_reason"] == \
            "deadline-client-wall_clock"

    def test_unlabeled_guard_reason_is_backwards_compatible(
            self, toy_space, toy_contours):
        from repro.algorithms.spillbound import SpillBound

        deadline = Deadline(wall_limit=10.0,
                            clock=_fake_clock([0.0] + [11.0] * 1000))
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               deadline=deadline)
        result = guard.run((3, 7))
        assert result.extras["degraded_reason"] == "deadline-wall_clock"


class TestDeadlineEngine:
    def test_charges_actual_spend_and_delegates(self, toy_space):
        engine = SimulatedEngine(toy_space, (3, 7))
        deadline = Deadline(cost_limit=1e18, clock=lambda: 0.0)
        metered = DeadlineEngine(engine, deadline)
        plan = toy_space.plans[0]
        outcome = metered.execute(plan, budget=plan.cost[(3, 7)])
        assert outcome.spent > 0.0
        assert deadline.spent == outcome.spent
        assert metered.spent_this_run == outcome.spent
        # Unbudgeted reads delegate untouched.
        assert metered.optimal_cost == engine.optimal_cost
        assert metered.true_cost(plan) == engine.true_cost(plan)

    def test_refuses_to_start_when_expired(self, toy_space):
        engine = SimulatedEngine(toy_space, (3, 7))
        deadline = Deadline(cost_limit=1.0, clock=lambda: 0.0)
        deadline.charge(2.0)
        metered = DeadlineEngine(engine, deadline)
        with pytest.raises(DeadlineExceededError):
            metered.execute(toy_space.plans[0], budget=1.0)


# ----------------------------------------------------------------------
# circuit breaker


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert not breaker.is_open
        breaker.record_failure()
        assert breaker.is_open
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open

    def test_cooldown_into_half_open_then_close(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure()
        assert breaker.is_open
        assert not breaker.allow()
        assert not breaker.allow()   # second refusal ends the cooldown
        assert breaker.allow()       # half-open: probe admitted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_crash_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure()
        assert not breaker.allow()   # cooldown consumed
        assert breaker.allow()       # probe
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.opened == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


# ----------------------------------------------------------------------
# the write-ahead journal


def _open_journal(tmp_path, config=None, **kwargs):
    journal = SweepJournal(str(tmp_path / "journal"), fsync=False,
                           **kwargs)
    journal.open(config=config if config is not None else {"id": 1})
    return journal


class TestSweepJournal:
    def test_fresh_journal_requires_config(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"), fsync=False)
        with pytest.raises(JournalError):
            journal.open()

    def test_commit_then_replay(self, tmp_path):
        grid = [1.5, 2.25, 0.75]
        with _open_journal(tmp_path) as journal:
            assert journal.replay_result("q/sb") is None
            journal.begin("q/sb")
            journal.commit("q/sb", {"sub_optimalities": grid})
            assert journal.stats.executed == 1
        with _open_journal(tmp_path) as journal:
            payload = journal.replay_result("q/sb")
            assert payload == {"sub_optimalities": grid}
            assert journal.stats.replayed == 1
            assert journal.inflight == []

    def test_inflight_units_reported(self, tmp_path):
        with _open_journal(tmp_path) as journal:
            journal.begin("q/a")
            journal.commit("q/a", {"ok": True})
            journal.begin("q/b")   # no commit: the kill point
        with _open_journal(tmp_path) as journal:
            assert journal.inflight == ["q/b"]
            assert journal.replay_result("q/a") == {"ok": True}

    def test_config_mismatch_refused(self, tmp_path):
        _open_journal(tmp_path, config={"sample": 10}).close()
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        with pytest.raises(JournalError) as exc:
            journal.open(config={"sample": 20})
        assert "different sweep config" in str(exc.value)

    def test_algorithm_list_change_is_compatible(self, tmp_path):
        # Adding or removing algorithms between runs only changes which
        # units exist, never the meaning of a committed unit, so resume
        # must accept it (regression: this used to refuse the journal).
        _open_journal(tmp_path,
                      config={"id": 1, "algorithms": ["sb", "pb"]}).close()
        with _open_journal(
                tmp_path,
                config={"id": 1, "algorithms": ["sb", "pb", "ab"]}):
            pass
        with _open_journal(tmp_path,
                           config={"id": 1, "algorithms": ["sb"]}):
            pass

    def test_non_algorithm_change_is_still_refused(self, tmp_path):
        _open_journal(tmp_path,
                      config={"id": 1, "algorithms": ["sb"]}).close()
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        with pytest.raises(JournalError) as exc:
            journal.open(config={"id": 2, "algorithms": ["sb"]})
        assert "different sweep config" in str(exc.value)

    def test_resume_expectations(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        with pytest.raises(JournalError):
            journal.open(config={"id": 1}, resume=True)
        _open_journal(tmp_path).close()
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        with pytest.raises(JournalError):
            journal.open(config={"id": 1}, resume=False)

    def test_segment_rotation(self, tmp_path):
        with _open_journal(tmp_path, segment_records=4) as journal:
            for i in range(6):
                journal.begin("u%d" % i)
                journal.commit("u%d" % i, {"i": i})
            names = sorted(n for n in os.listdir(journal.path)
                           if n.endswith(".wal"))
        assert len(names) >= 3
        with _open_journal(tmp_path, segment_records=4) as journal:
            for i in range(6):
                assert journal.replay_result("u%d" % i) == {"i": i}
            assert journal.stats.resumed_segments == len(names)

    def test_torn_tail_is_truncated(self, tmp_path):
        with _open_journal(tmp_path) as journal:
            journal.begin("q/a")
            journal.commit("q/a", {"ok": True})
            path = journal._segment_path(journal._segment_index)
        size = os.path.getsize(path)
        with open(path, "a") as handle:
            handle.write("deadbeef {\"type\": \"begi")   # the SIGKILL
        with _open_journal(tmp_path) as journal:
            assert journal.stats.truncated_records == 1
            assert journal.replay_result("q/a") == {"ok": True}
        assert os.path.getsize(path) == size

    def test_interior_corruption_refused(self, tmp_path):
        with _open_journal(tmp_path) as journal:
            journal.begin("q/a")
            journal.commit("q/a", {"ok": True})
            path = journal._segment_path(journal._segment_index)
        with open(path) as handle:
            lines = handle.readlines()
        lines[1] = lines[1].replace("a", "b", 1)
        with open(path, "w") as handle:
            handle.writelines(lines)
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        with pytest.raises(JournalError) as exc:
            journal.open(config={"id": 1})
        assert "corrupt record" in str(exc.value)

    def test_double_commit_refused_on_replay(self, tmp_path):
        with _open_journal(tmp_path) as journal:
            journal.begin("q/a")
            journal.commit("q/a", {"ok": True})
            journal._append({"type": "commit", "unit": "q/a",
                             "result": {"ok": False}})
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        with pytest.raises(JournalError) as exc:
            journal.open(config={"id": 1})
        assert "committed twice" in str(exc.value)

    def test_unknown_record_type_refused(self, tmp_path):
        with _open_journal(tmp_path) as journal:
            journal._append({"type": "mystery"})
        journal = SweepJournal(str(tmp_path / "journal"), fsync=False)
        with pytest.raises(JournalError):
            journal.open(config={"id": 1})

    def test_writer_lock_is_exclusive(self, tmp_path):
        journal = _open_journal(tmp_path)
        other = SweepJournal(str(tmp_path / "journal"), fsync=False,
                             lock_timeout=0.1)
        with pytest.raises(LockTimeoutError):
            other.open(config={"id": 1})
        journal.close()

    def test_unit_key_and_sidecar_sanitisation(self, tmp_path):
        journal = _open_journal(tmp_path)
        unit = SweepJournal.unit_key("4D_Q26", "plan bouquet/λ=2")
        sidecar = journal.checkpoint_path(unit)
        assert os.path.dirname(sidecar) == journal.path
        assert "/" not in os.path.basename(sidecar)[len("inflight-"):]
        journal.close()

    def test_sidecar_names_are_injective(self, tmp_path):
        # Regression: the old lossy sanitiser mapped every non-filename
        # character to "_", so units "q/a" and "q_a" shared a sidecar
        # and a resume could replay the wrong unit's checkpoint.
        journal = _open_journal(tmp_path)
        paths = {journal.checkpoint_path(unit)
                 for unit in ("q/a", "q_a", "q%2Fa", "q a", "q\ta")}
        assert len(paths) == 5
        journal.close()

    def test_records_reads_without_the_lock(self, tmp_path):
        journal = _open_journal(tmp_path)
        journal.begin("q/a")
        # A second, lock-free observer sees the append mid-write.
        observer = SweepJournal(str(tmp_path / "journal"), fsync=False)
        kinds = [r["type"] for r in observer.records()]
        assert kinds == ["segment", "meta", "begin"]
        journal.close()


# ----------------------------------------------------------------------
# checkpoint corruption (the torn-write satellite)


class TestCheckpointDurability:
    def test_save_is_atomic_and_round_trips(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        checkpoint = DiscoveryCheckpoint(path=path, qa_index=(3, 7))
        checkpoint.capture(1, resolved={0: 4}, qrun=[1, 2])
        loaded = DiscoveryCheckpoint.load(path)
        assert loaded.active
        assert loaded.qa_index == (3, 7)
        assert loaded.contour == 1
        assert os.listdir(str(tmp_path)) == ["ckpt.json"]

    def test_corrupt_checkpoint_warns_and_restarts(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        with open(path, "w") as handle:
            handle.write('{"contour": 2, "bounds"')   # torn JSON
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            loaded = DiscoveryCheckpoint.load(path)
        assert not loaded.active

    def test_missing_checkpoint_still_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DiscoveryCheckpoint.load(str(tmp_path / "absent.json"))


# ----------------------------------------------------------------------
# guard wiring


class TestGuardWatchdogs:
    def test_wall_deadline_degrades_with_reason(self, toy_space,
                                                toy_contours):
        from repro.algorithms.spillbound import SpillBound

        deadline = Deadline(wall_limit=10.0,
                            clock=_fake_clock([0.0] + [11.0] * 1000))
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               deadline=deadline)
        result = guard.run((3, 7))
        assert result.extras["degraded"] is True
        assert result.extras["degraded_reason"] == "deadline-wall_clock"
        assert result.extras["fallback"] == "native"

    def test_cost_budget_allows_at_most_one_overshoot(self, toy_space,
                                                      toy_contours):
        from repro.algorithms.spillbound import SpillBound

        plain = SpillBound(toy_space, toy_contours).run((12, 2))
        budget = plain.total_cost / 2.0
        deadline = Deadline(cost_limit=budget, clock=lambda: 0.0)
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               deadline=deadline)
        result = guard.run((12, 2))
        assert result.extras["degraded_reason"] == "deadline-cost_budget"
        # Cooperative semantics: the overshoot is at most one
        # execution's spend beyond the budget.
        worst = max(r.spent for r in plain.executions)
        assert deadline.spent <= budget + worst + 1e-9
        # The aborted attempt's partial spend is accounted as waste.
        assert result.extras["wasted_cost"] > 0.0

    def test_breaker_open_fast_fails_later_runs(self, toy_space,
                                                toy_contours):
        from repro.algorithms.spillbound import SpillBound

        breaker = CircuitBreaker(threshold=3, cooldown=10**6)
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               policy=RetryPolicy(max_retries=2),
                               breaker=breaker)
        crashing = FaultyEngine(toy_space, (3, 7),
                                plan=FaultPlan(crash_rate=1.0, seed=5))
        first = guard.run((3, 7), engine=crashing)
        assert first.extras["degraded"] is True
        assert breaker.is_open
        failures_at_open = breaker.failures
        second = guard.run((3, 7), engine=crashing)
        assert second.extras["degraded_reason"] == "breaker-open"
        # Fast fail: the breaker refused before any attempt, so no new
        # crash was recorded.
        assert breaker.failures == failures_at_open

    def test_breaker_closes_on_healthy_run(self, toy_space,
                                           toy_contours):
        from repro.algorithms.spillbound import SpillBound

        breaker = CircuitBreaker(threshold=3)
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               breaker=breaker)
        result = guard.run((3, 7))
        assert result.extras["degraded"] is False
        assert result.extras["degraded_reason"] is None
        assert breaker.state == CircuitBreaker.CLOSED

    def test_transients_do_not_trip_the_breaker(self, toy_space,
                                                toy_contours):
        from repro.algorithms.spillbound import SpillBound

        breaker = CircuitBreaker(threshold=1)
        guard = DiscoveryGuard(SpillBound(toy_space, toy_contours),
                               policy=RetryPolicy(max_retries=5),
                               breaker=breaker)
        flaky = FaultyEngine(toy_space, (3, 7),
                             plan=FaultPlan(transient_on_calls=(1,)))
        result = guard.run((3, 7), engine=flaky)
        assert result.extras["degraded"] is False
        assert not breaker.is_open


class TestSessionWiring:
    def test_deadline_implies_a_guard(self, toy_space, toy_contours):
        session = RobustSession()
        deadline = Deadline(cost_limit=1e18, clock=lambda: 0.0)
        algo = session.algorithm("spillbound", space=toy_space,
                                 contours=toy_contours,
                                 deadline=deadline)
        assert isinstance(algo, DiscoveryGuard)
        assert algo.deadline is deadline

    def test_breaker_board_shares_per_spec(self):
        board = BreakerBoard(threshold=2)
        a = board.breaker_for("simulated")
        assert board.breaker_for("simulated") is a
        b = board.breaker_for("simulated+faulty(crash=0.2)")
        assert b is not a
        assert len(board) == 2
        a.record_failure()
        a.record_failure()
        assert board.open_count() == 1

    def test_session_breaker_board_attaches(self, toy_space,
                                            toy_contours):
        session = RobustSession(breaker=True)
        algo = session.algorithm("spillbound", space=toy_space,
                                 contours=toy_contours)
        assert isinstance(algo, DiscoveryGuard)
        assert algo.breaker is \
            session.breakers.breaker_for(session.engine_spec)


# ----------------------------------------------------------------------
# journaled sweep driving


class TestJournaledSweeps:
    ALGS = ("spillbound", "alignedbound")

    def _driver(self, tmp_path, **kwargs):
        session = RobustSession(resolution=8)
        return SweepDriver(session, sample=10, rng=3, resolution=8,
                           journal=str(tmp_path / "journal"), **kwargs)

    def test_resume_replays_bit_identical(self, toy_query, tmp_path):
        first = list(self._driver(tmp_path).run([toy_query], self.ALGS))
        assert all(not r.replayed for r in first)
        second = list(self._driver(tmp_path).run([toy_query], self.ALGS))
        assert all(r.replayed for r in second)
        for a, b in zip(first, second):
            assert a.algorithm == b.algorithm
            assert np.array_equal(a.sweep.sub_optimalities,
                                  b.sweep.sub_optimalities)
            assert a.sweep.shape == b.sweep.shape

    def test_replay_runs_nothing(self, toy_query, tmp_path):
        list(self._driver(tmp_path).run([toy_query], self.ALGS))
        driver = self._driver(tmp_path)
        list(driver.run([toy_query], self.ALGS))
        assert driver.journal_stats.replayed == len(self.ALGS)
        assert driver.journal_stats.executed == 0

    def test_changed_config_is_refused(self, toy_query, tmp_path):
        list(self._driver(tmp_path).run([toy_query], self.ALGS))
        driver = self._driver(tmp_path)
        driver.sample = 99
        with pytest.raises(JournalError):
            list(driver.run([toy_query], self.ALGS))

    def test_partial_journal_runs_only_the_rest(self, toy_query,
                                                tmp_path):
        driver = self._driver(tmp_path)
        stream = driver.run([toy_query], self.ALGS)
        next(stream)            # complete the first unit only
        stream.close()          # generator cleanup closes the journal
        resumed = self._driver(tmp_path)
        records = list(resumed.run([toy_query], self.ALGS))
        assert [r.replayed for r in records] == [True, False]
        assert resumed.journal_stats.replayed == 1
        assert resumed.journal_stats.executed == 1

    def test_unjournaled_driver_is_unchanged(self, toy_query):
        session = RobustSession(resolution=8)
        driver = SweepDriver(session, sample=10, rng=3, resolution=8)
        records = list(driver.run([toy_query], self.ALGS))
        assert driver.journal_stats is None
        assert [r.algorithm for r in records] == list(self.ALGS)
