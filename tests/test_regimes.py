"""Seeded q-error regime workloads: PCM validity, naming, determinism.

The regime generator is the atlas's workload multiplier -- every
(skeleton, regime, seed) triple must yield a PCM-valid synthetic space,
deterministically, resolvable as a first-class workload name through
the whole session machinery (cache, sweeps, parallel workers).
"""

import numpy as np
import pytest

from repro.common.errors import DiscoveryError
from repro.ess.regimes import (
    REGIMES,
    RegimeQuery,
    regime_space,
    split_regime_name,
)
from repro.harness.workloads import suite, suite_of, workload
from repro.session import RobustSession


class TestNameParsing:
    def test_unqualified_name_passes_through(self):
        assert split_regime_name("4D_Q7") is None

    def test_qualified_name_splits(self):
        assert split_regime_name("4D_Q7@tail-blowup#3") == \
            ("4D_Q7", "tail-blowup", 3)

    def test_seed_defaults_to_zero(self):
        assert split_regime_name("2D_EQ@uniform-noise") == \
            ("2D_EQ", "uniform-noise", 0)

    def test_bad_seed_refused(self):
        with pytest.raises(DiscoveryError):
            split_regime_name("2D_EQ@uniform-noise#x")

    def test_empty_parts_refused(self):
        with pytest.raises(DiscoveryError):
            split_regime_name("@uniform-noise")

    def test_name_round_trips(self):
        for seed in (0, 7):
            query = RegimeQuery("3D_Q15", 3, "correlated-skew", seed)
            assert split_regime_name(query.name) == \
                ("3D_Q15", "correlated-skew", seed)

    def test_unknown_regime_refused_by_constructor(self):
        with pytest.raises(DiscoveryError):
            RegimeQuery("3D_Q15", 3, "nonsense")


class TestWorkloadResolution:
    def test_workload_builds_regime_query(self):
        query = workload("2D_Q91@tail-blowup#3")
        assert isinstance(query, RegimeQuery)
        assert query.dimensions == 2
        assert query.name == "2D_Q91@tail-blowup#3"

    def test_dimensionality_comes_from_base(self):
        assert workload("3D_Q15@uniform-noise").dimensions == 3

    def test_unknown_base_refused(self):
        with pytest.raises(KeyError):
            workload("9D_NOPE@uniform-noise")

    def test_suite_of_resolves_through_base(self):
        assert suite_of("2D_Q91@tail-blowup#3") == "tpcds"
        assert suite_of("3D_JOB1a@uniform-noise") == "job"
        assert suite_of("2D_EQ@correlated-skew") == "tpch"
        assert suite_of("not-a-workload") == "custom"

    def test_suites_enumerable(self):
        assert "3D_Q15" in suite("tpcds")
        assert "2D_EQ" in suite("tpch")
        assert "3D_JOB1a" in suite("job")
        with pytest.raises(KeyError):
            suite("nope")


class TestPCMProperty:
    """Every generated grid must be strictly PCM along every axis --
    the property the paper's algorithms assume of any cost surface."""

    @pytest.mark.parametrize("regime", REGIMES)
    @pytest.mark.parametrize("dims", (1, 2, 3))
    @pytest.mark.parametrize("seed", (0, 1, 17))
    def test_grids_are_pcm_valid(self, regime, dims, seed):
        # SyntheticSpace(validate_pcm=True) raises on violation, but
        # assert the property independently rather than trusting the
        # builder's own check.
        space = regime_space(dims, regime, seed=seed, resolution=6)
        for info in space.plans:
            for axis in range(dims):
                assert np.all(np.diff(info.cost, axis=axis) > 0), \
                    "%s seed=%d plan=%d axis=%d" % (regime, seed,
                                                    info.id, axis)

    @pytest.mark.parametrize("regime", REGIMES)
    def test_costs_positive_and_bounded(self, regime):
        space = regime_space(2, regime, resolution=8)
        assert space.c_min > 0
        assert np.isfinite(space.c_max)
        assert space.c_max > space.c_min

    def test_unknown_regime_refused(self):
        with pytest.raises(DiscoveryError):
            regime_space(2, "benign")


class TestDeterminism:
    def test_same_seed_identical_surfaces(self):
        one = regime_space(2, "tail-blowup", seed=5, resolution=6)
        two = regime_space(2, "tail-blowup", seed=5, resolution=6)
        for a, b in zip(one.plans, two.plans):
            assert np.array_equal(a.cost, b.cost)
        assert np.array_equal(one.plan_at, two.plan_at)

    def test_different_seeds_differ(self):
        one = regime_space(2, "tail-blowup", seed=0, resolution=6)
        two = regime_space(2, "tail-blowup", seed=1, resolution=6)
        assert not all(np.array_equal(a.cost, b.cost)
                       for a, b in zip(one.plans, two.plans))

    def test_regimes_differ(self):
        surfaces = {}
        for regime in REGIMES:
            space = regime_space(2, regime, seed=0, resolution=6)
            surfaces[regime] = space.plans[0].cost
        assert not np.array_equal(surfaces["uniform-noise"],
                                  surfaces["tail-blowup"])

    def test_skeleton_salt_distinguishes_instances(self):
        # Two same-dimensional skeletons must not draw the same
        # landscape, or an atlas over many skeletons measures one.
        eq = workload("2D_EQ@tail-blowup").build_space(resolution=6)
        q91 = workload("2D_Q91@tail-blowup").build_space(resolution=6)
        assert not np.array_equal(eq.plans[0].cost, q91.plans[0].cost)

    def test_regime_query_pickles(self):
        import pickle
        query = workload("2D_Q91@tail-blowup#3")
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query
        assert clone.name == query.name
        a = query.build_space(resolution=5)
        b = clone.build_space(resolution=5)
        assert np.array_equal(a.plans[0].cost, b.plans[0].cost)


class TestSessionIntegration:
    def test_session_builds_and_caches_regime_space(self):
        session = RobustSession(engine_spec="simulated")
        name = "2D_Q91@tail-blowup#3"
        space1, contours = session.space_and_contours(name, resolution=6)
        space2, _ = session.space_and_contours(name, resolution=6)
        assert space1 is space2
        assert session.stats.memory_hits >= 1
        assert space1.grid.shape == (6, 6)
        assert len(contours) > 0

    def test_discovery_runs_on_regime_space(self):
        session = RobustSession(engine_spec="simulated")
        result = session.run("2D_Q91@tail-blowup#3", qa_index=(3, 2),
                             algorithm="spillbound", resolution=6)
        assert result.sub_optimality >= 1.0
        guarantee = 2 * 2 + 3 * 2  # D^2 + 3D at D=2
        assert result.sub_optimality <= guarantee

    def test_regime_spaces_not_persisted_to_disk(self, tmp_path):
        session = RobustSession(cache_dir=str(tmp_path),
                                engine_spec="simulated")
        session.space("2D_Q91@uniform-noise", resolution=5)
        assert not list(tmp_path.glob("*.npz"))
        # ...but a real catalog space still is.
        session.space("2D_Q91", resolution=5)
        assert list(tmp_path.glob("*.npz"))
