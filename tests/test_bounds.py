"""Theorem-level property tests on randomised instances.

These are the repository's strongest correctness checks: random
catalogs and queries are generated, the ESS is built exactly, and the
paper's guarantees (Theorems 4.2, 4.5, 5.1 and the PlanBouquet bound)
are asserted over *exhaustive* empirical MSO sweeps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.alignedbound import AlignedBound
from repro.algorithms.alignment import analyse_alignment
from repro.algorithms.planbouquet import PlanBouquet
from repro.algorithms.spillbound import SpillBound, spillbound_guarantee
from repro.catalog.schema import Catalog, Column, Table
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.metrics.mso import exhaustive_sweep
from repro.query.query import Query, make_join


def random_instance(draw):
    """Draw a random 2- or 3-epp chain/star query over random stats."""
    n_dims = draw(st.integers(2, 3))
    fact_rows = draw(st.integers(10_000, 10_000_000))
    dims = []
    joins = []
    fact_cols = [Column("pk", fact_rows)]
    shape = draw(st.sampled_from(["star", "chain"]))
    prev_table = "fact"
    for k in range(n_dims):
        rows = draw(st.integers(100, 200_000))
        ndv = draw(st.integers(50, max(51, rows)))
        link_ndv = draw(st.integers(50, 100_000))
        table = "dim%d" % k
        cols = [Column("id", ndv)]
        if shape == "chain" and k + 1 < n_dims:
            cols.append(Column("link", link_ndv))
        dims.append(Table(table, rows, cols))
        if shape == "star":
            fact_cols.append(Column("fk%d" % k, link_ndv))
            joins.append(make_join(
                "j%d" % k, "fact.fk%d" % k, "%s.id" % table))
        else:
            if k == 0:
                fact_cols.append(Column("fk0", link_ndv))
                joins.append(make_join("j0", "fact.fk0", "dim0.id"))
            else:
                joins.append(make_join(
                    "j%d" % k, "%s.link" % prev_table, "%s.id" % table))
            prev_table = table
    catalog = Catalog("rand", [Table("fact", fact_rows, fact_cols)] + dims)
    return Query(
        "rand_%dd" % n_dims, catalog,
        ["fact"] + [t.name for t in dims],
        joins,
        epps=tuple(j.name for j in joins),
    )


@st.composite
def instances(draw):
    return random_instance(draw)


@given(instances())
@settings(max_examples=12, deadline=None)
def test_theorem_4_5_randomised(query):
    """SpillBound's empirical MSO never exceeds D^2 + 3D."""
    resolution = 10 if query.dimensions == 2 else 6
    space = ExplorationSpace(query, resolution=resolution, s_min=1e-5)
    space.build(mode="exact")
    contours = ContourSet(space)
    sb = SpillBound(space, contours)
    sweep = exhaustive_sweep(sb)
    d = query.dimensions
    assert sweep.mso <= d * d + 3 * d + 1e-6


@given(instances())
@settings(max_examples=8, deadline=None)
def test_planbouquet_bound_randomised(query):
    """PlanBouquet's empirical MSO never exceeds 4(1+lam)rho."""
    resolution = 10 if query.dimensions == 2 else 6
    space = ExplorationSpace(query, resolution=resolution, s_min=1e-5)
    space.build(mode="exact")
    contours = ContourSet(space)
    pb = PlanBouquet(space, contours, lam=0.2)
    sweep = exhaustive_sweep(pb)
    assert sweep.mso <= pb.mso_guarantee() + 1e-6


@given(instances())
@settings(max_examples=8, deadline=None)
def test_alignedbound_bound_randomised(query):
    """AlignedBound stays within the quadratic bound; when every contour
    is natively aligned it reaches the 2D+2 regime (Theorem 5.1)."""
    resolution = 10 if query.dimensions == 2 else 6
    space = ExplorationSpace(query, resolution=resolution, s_min=1e-5)
    space.build(mode="exact")
    contours = ContourSet(space)
    ab = AlignedBound(space, contours)
    sweep = exhaustive_sweep(ab)
    d = query.dimensions
    assert sweep.mso <= d * d + 3 * d + 1e-6
    alignment = analyse_alignment(space, contours, use_constrained=False)
    if alignment.fraction_aligned(1.0) == 1.0:
        assert sweep.mso <= ab.mso_lower_guarantee() + 1e-6


class TestTheorem42:
    def test_2d_bound_is_10(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        assert sb.mso_guarantee() == pytest.approx(10.0)
        assert exhaustive_sweep(sb).mso <= 10.0 + 1e-6


class TestLowerBoundTheorem46:
    """Theorem 4.6: no half-space-pruning algorithm beats MSO = D.

    The formal adversary is out of scope (its proof is omitted in the
    paper too); we check the observable consequences instead: the
    guarantee grows quadratically while the lower bound grows linearly,
    and empirical MSO on real spaces indeed sits between 1 and the
    guarantee.
    """

    def test_guarantee_quadratic_gap(self):
        for d in range(2, 7):
            assert spillbound_guarantee(d) >= d  # bound respects Omega(D)
            assert spillbound_guarantee(d) <= d * d + 3 * d + 1e-9

    def test_empirical_exceeds_one(self, toy_space, toy_contours):
        sweep = exhaustive_sweep(SpillBound(toy_space, toy_contours))
        assert sweep.mso > 1.0
