"""Unit tests for :mod:`repro.common.backoff`.

The shared retry schedule underpins the serve client's resilience and
the chaos harnesses, so its contract -- deterministic per-stream jitter,
bounds, hint handling, deadline clamping -- is pinned here directly.
"""

import pytest

from repro.common.backoff import Backoff, BackoffPolicy


class TestPolicyValidation:
    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0)
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1.0)

    def test_rejects_cap_below_base(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=1.0, cap=0.5)

    def test_rejects_multiplier_below_one(self):
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.9)

    def test_repr_mentions_knobs(self):
        text = repr(BackoffPolicy(base=0.1, cap=3.0, seed=7))
        assert "0.1" in text and "3" in text


class TestDeterminism:
    def test_same_stream_same_schedule(self):
        policy = BackoffPolicy(seed=42)
        one = policy.start(stream=5)
        two = policy.start(stream=5)
        assert [one.next_delay() for _ in range(8)] \
            == [two.next_delay() for _ in range(8)]

    def test_distinct_streams_distinct_schedules(self):
        policy = BackoffPolicy(seed=0)
        one = policy.start(stream=0)
        two = policy.start(stream=1)
        assert [one.next_delay() for _ in range(6)] \
            != [two.next_delay() for _ in range(6)]

    def test_auto_streams_are_sequential_and_distinct(self):
        policy = BackoffPolicy(seed=3)
        first = policy.start()
        second = policy.start()
        assert [first.next_delay() for _ in range(6)] \
            != [second.next_delay() for _ in range(6)]
        # A pinned stream reproduces whatever an auto stream drew.
        assert policy.start(stream=0).next_delay() \
            == BackoffPolicy(seed=3).start().next_delay()


class TestBounds:
    def test_delays_stay_within_base_and_cap(self):
        policy = BackoffPolicy(base=0.01, cap=0.5, multiplier=3.0,
                               seed=1)
        state = policy.start()
        delays = [state.next_delay() for _ in range(200)]
        assert all(0.01 <= d <= 0.5 for d in delays)

    def test_grows_toward_cap(self):
        policy = BackoffPolicy(base=0.01, cap=10.0, multiplier=3.0,
                               seed=2)
        state = policy.start()
        delays = [state.next_delay() for _ in range(30)]
        # Decorrelated jitter grows geometrically in expectation: the
        # late delays must dwarf the early ones.
        assert max(delays[15:]) > 20 * delays[0]

    def test_attempts_counter(self):
        state = BackoffPolicy().start()
        for expected in range(1, 5):
            state.next_delay()
            assert state.attempts == expected


class TestRetryAfterHint:
    def test_hint_is_a_lower_bound(self):
        policy = BackoffPolicy(base=0.01, cap=5.0, seed=0)
        state = policy.start()
        assert state.next_delay(retry_after=2.5) >= 2.5

    def test_hint_clipped_to_cap(self):
        policy = BackoffPolicy(base=0.01, cap=0.3, seed=0)
        state = policy.start()
        # A hostile hint cannot park the client past the cap.
        assert state.next_delay(retry_after=600.0) <= 0.3

    def test_nonpositive_hint_ignored(self):
        policy = BackoffPolicy(base=0.01, cap=1.0, seed=9)
        baseline = policy.start(stream=0)
        hinted = policy.start(stream=0)
        assert hinted.next_delay(retry_after=0) \
            == baseline.next_delay()


class TestDeadline:
    def test_delay_clamped_to_remaining_budget(self):
        clock = FakeClock()
        policy = BackoffPolicy(base=1.0, cap=1.0, seed=0)
        state = policy.start(deadline_s=0.25, clock=clock)
        assert state.next_delay() == 0.25

    def test_exhausted_budget_yields_none(self):
        clock = FakeClock()
        state = BackoffPolicy().start(deadline_s=1.0, clock=clock)
        clock.advance(2.0)
        assert state.next_delay() is None

    def test_remaining_tracks_clock(self):
        clock = FakeClock()
        state = BackoffPolicy().start(deadline_s=5.0, clock=clock)
        clock.advance(2.0)
        assert state.remaining() == pytest.approx(3.0)

    def test_unbounded_remaining_is_none(self):
        assert BackoffPolicy().start().remaining() is None


class TestSleep:
    def test_sleep_uses_sleeper_and_reports_true(self):
        slept = []
        state = BackoffPolicy(base=0.05, cap=0.05).start()
        assert state.sleep(sleeper=slept.append) is True
        assert slept == [0.05]

    def test_sleep_reports_false_when_budget_out(self):
        clock = FakeClock()
        slept = []
        state = BackoffPolicy().start(deadline_s=1.0, clock=clock)
        clock.advance(5.0)
        assert state.sleep(sleeper=slept.append) is False
        assert slept == []


class FakeClock:
    """A manually advanced monotonic clock for deadline tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_backoff_direct_construction():
    state = Backoff(BackoffPolicy(base=0.02, cap=0.02), stream=3)
    assert state.next_delay() == pytest.approx(0.02)
