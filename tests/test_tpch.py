"""Tests for the TPC-H catalog and bonus workloads."""

import pytest

from repro.catalog.tpch import tpch_catalog
from repro.ess.contours import ContourSet
from repro.ess.space import ExplorationSpace
from repro.harness.tpch_workloads import (
    TPCH_SUITE,
    example_query_eq,
    tpch_suite,
    tpch_workload,
)
from repro.metrics.mso import exhaustive_sweep


class TestCatalog:
    def test_tables_present(self):
        catalog = tpch_catalog()
        for name in ("lineitem", "orders", "customer", "part",
                     "supplier", "nation", "region"):
            assert name in catalog

    def test_lineitem_largest(self):
        catalog = tpch_catalog()
        assert catalog.table("lineitem").row_count == max(
            t.row_count for t in catalog.tables.values())

    def test_scale_factor(self):
        sf1 = tpch_catalog(scale_factor=1)
        sf10 = tpch_catalog(scale_factor=10)
        assert sf10.table("orders").row_count == \
            10 * sf1.table("orders").row_count
        # Fixed-size tables stay fixed.
        assert sf10.table("nation").row_count == 25


class TestWorkloads:
    @pytest.mark.parametrize("name", TPCH_SUITE)
    def test_suite_builds(self, name):
        query = tpch_workload(name)
        declared = int(name.split("D_")[0])
        assert query.dimensions == declared

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            tpch_workload("9D_H99")

    def test_suite_complete(self):
        assert len(tpch_suite()) == 4

    def test_example_query_matches_figure_1(self):
        """The introduction's EQ: part/lineitem/orders with the
        retail-price filter and the two join epps bold-faced."""
        query = example_query_eq()
        assert set(query.tables) == {"part", "lineitem", "orders"}
        assert query.epps == ("p_l", "o_l")
        filt = query.predicate("f_price")
        assert filt.op == "<"
        assert filt.constant == 1_000


class TestGuaranteesOnTpch:
    def test_example_query_spillbound_bound(self):
        """The paper's own example obeys Theorem 4.2 end to end."""
        from repro.algorithms.spillbound import SpillBound
        query = example_query_eq()
        space = ExplorationSpace(query, resolution=12)
        space.build(mode="fast", rng=0)
        sb = SpillBound(space, ContourSet(space))
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= 10.0 + 1e-6

    def test_q10_alignedbound_bound(self):
        from repro.algorithms.alignedbound import AlignedBound
        query = tpch_workload("3D_H10")
        space = ExplorationSpace(query, resolution=8)
        space.build(mode="fast", rng=0)
        ab = AlignedBound(space, ContourSet(space))
        sweep = exhaustive_sweep(ab, sample=64, rng=0)
        assert sweep.mso <= 18.0 + 1e-6
