"""Tests for the benchmark workload registry."""

import pytest

from repro.harness.workloads import (
    PAPER_SUITE,
    build_space,
    job_q1a,
    paper_suite,
    q91_dimensional_ramp,
    workload,
)


class TestRegistry:
    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_paper_suite_builds(self, name):
        query = workload(name)
        declared = int(name.split("D_")[0])
        assert query.dimensions == declared
        assert query.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            workload("9D_Q999")

    def test_paper_suite_complete(self):
        queries = paper_suite()
        assert len(queries) == 11
        dims = sorted(q.dimensions for q in queries)
        assert dims == [3, 3, 4, 4, 4, 4, 5, 5, 5, 6, 6]

    def test_epps_are_joins(self):
        from repro.query.predicates import JoinPredicate
        for query in paper_suite():
            for epp in query.epps:
                assert isinstance(query.predicate(epp), JoinPredicate)

    def test_q91_ramp(self):
        ramp = q91_dimensional_ramp()
        assert [q.dimensions for q in ramp] == [2, 3, 4, 5, 6]
        # Lower-dimensional epp sets are prefixes of higher ones.
        for small, big in zip(ramp, ramp[1:]):
            assert big.epps[: small.dimensions] == small.epps

    def test_job_q1a(self):
        query = job_q1a(3)
        assert query.dimensions == 3
        assert "title" in query.tables
        assert query.catalog.name == "imdb_job"


class TestBuildSpace:
    def test_cache_hits(self):
        query = workload("2D_Q91")
        a = build_space(query, resolution=8)
        b = build_space(query, resolution=8)
        assert a is b

    def test_cache_bypass(self):
        query = workload("2D_Q91")
        a = build_space(query, resolution=8)
        b = build_space(query, resolution=8, cache=False)
        assert a is not b

    def test_resolution_respected(self):
        query = workload("2D_Q91")
        space = build_space(query, resolution=6, cache=False)
        assert space.grid.shape == (6, 6)
