"""Unit tests for the SPJ query model."""

import pytest

from repro.common.errors import QueryError
from repro.query.predicates import FilterPredicate, JoinPredicate
from repro.query.query import Query, make_filter, make_join


class TestJoinPredicate:
    def test_requires_qualified_sides(self):
        with pytest.raises(QueryError):
            JoinPredicate("j", "a", "t2.c")

    def test_accessors(self):
        j = JoinPredicate("j", "t1.a", "t2.b")
        assert j.left_table == "t1"
        assert j.left_column == "a"
        assert j.right_table == "t2"
        assert j.right_column == "b"
        assert j.tables == frozenset(("t1", "t2"))

    def test_other_side(self):
        j = JoinPredicate("j", "t1.a", "t2.b")
        assert j.other_side("t1") == "t2.b"
        assert j.other_side("t2") == "t1.a"
        with pytest.raises(QueryError):
            j.other_side("t3")

    def test_column_for(self):
        j = JoinPredicate("j", "t1.a", "t2.b")
        assert j.column_for("t1") == "t1.a"
        assert j.column_for("t2") == "t2.b"
        with pytest.raises(QueryError):
            j.column_for("t3")


class TestFilterPredicate:
    def test_requires_qualified_column(self):
        with pytest.raises(QueryError):
            FilterPredicate("f", "col", "<", 5)

    def test_rejects_unknown_op(self):
        with pytest.raises(QueryError):
            FilterPredicate("f", "t.c", "~", 5)

    def test_accessors(self):
        f = FilterPredicate("f", "t.c", "<=", 5)
        assert f.table == "t"
        assert f.column_name == "c"


class TestQueryValidation:
    def test_valid_query(self, toy_query):
        assert toy_query.dimensions == 2
        assert len(toy_query.joins) == 3

    def test_rejects_duplicate_tables(self, toy_catalog):
        with pytest.raises(QueryError):
            Query("q", toy_catalog, ["fact", "fact"], [], [], ())

    def test_rejects_disconnected_graph(self, toy_catalog):
        with pytest.raises(QueryError, match="disconnected"):
            Query(
                "q", toy_catalog, ["fact", "dim1", "dim3"],
                [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
                epps=(),
            )

    def test_rejects_join_outside_query(self, toy_catalog):
        with pytest.raises(QueryError):
            Query(
                "q", toy_catalog, ["fact", "dim1"],
                [make_join("j1", "fact.f_dim2", "dim2.d2_id")],
                epps=(),
            )

    def test_rejects_unknown_column(self, toy_catalog):
        with pytest.raises(Exception):
            Query(
                "q", toy_catalog, ["fact", "dim1"],
                [make_join("j1", "fact.nope", "dim1.d1_id")],
                epps=(),
            )

    def test_rejects_duplicate_predicate_names(self, toy_catalog):
        with pytest.raises(QueryError):
            Query(
                "q", toy_catalog, ["fact", "dim1", "dim2"],
                [
                    make_join("j", "fact.f_dim1", "dim1.d1_id"),
                    make_join("j", "fact.f_dim2", "dim2.d2_id"),
                ],
                epps=(),
            )

    def test_rejects_unknown_epp(self, toy_catalog):
        with pytest.raises(QueryError):
            Query(
                "q", toy_catalog, ["fact", "dim1"],
                [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
                epps=("missing",),
            )

    def test_rejects_duplicate_epps(self, toy_catalog):
        with pytest.raises(QueryError):
            Query(
                "q", toy_catalog, ["fact", "dim1"],
                [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
                epps=("j1", "j1"),
            )

    def test_rejects_filter_outside_query(self, toy_catalog):
        with pytest.raises(QueryError):
            Query(
                "q", toy_catalog, ["fact", "dim1"],
                [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
                [make_filter("f", "dim2.d2_attr", "<", 1)],
                epps=(),
            )

    def test_rejects_empty_query(self, toy_catalog):
        with pytest.raises(QueryError):
            Query("q", toy_catalog, [], [], [], ())


class TestQueryAccessors:
    def test_epp_index_order(self, toy_query):
        assert toy_query.epp_index("j1") == 0
        assert toy_query.epp_index("j2") == 1
        with pytest.raises(QueryError):
            toy_query.epp_index("j3")  # not an epp

    def test_is_epp(self, toy_query):
        assert toy_query.is_epp("j1")
        assert not toy_query.is_epp("j3")

    def test_predicate_lookup(self, toy_query):
        assert toy_query.predicate("j1").name == "j1"
        assert toy_query.predicate("f1").op == "<"
        with pytest.raises(QueryError):
            toy_query.predicate("nope")

    def test_filters_for(self, toy_query):
        assert [f.name for f in toy_query.filters_for("fact")] == ["f1"]
        assert toy_query.filters_for("dim1") == []

    def test_join_for_tables(self, toy_query):
        found = toy_query.join_for_tables({"fact"}, {"dim1"})
        assert [j.name for j in found] == ["j1"]
        found = toy_query.join_for_tables({"fact", "dim1"}, {"dim2"})
        assert [j.name for j in found] == ["j2"]

    def test_with_epps(self, toy_query):
        clone = toy_query.with_epps(("j1", "j2", "j3"))
        assert clone.dimensions == 3
        assert clone.name.startswith("3D_")
        # The original is untouched.
        assert toy_query.dimensions == 2
