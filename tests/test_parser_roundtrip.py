"""Property test: generated queries survive an SQL round-trip.

Random workloads are rendered to SQL text, parsed back, and must
produce the same join graph, filters and (join-)epp structure --
exercising the generator and the parser against each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.generator import SHAPES, random_query
from repro.query.parser import parse_query


def query_to_sql(query):
    """Render a library query back to the parser's SQL dialect."""
    from_clause = ", ".join(query.tables)
    conditions = []
    for join in query.joins:
        conditions.append("%s = %s" % (join.left, join.right))
    for filt in query.filters:
        conditions.append("%s %s %s" % (filt.column, filt.op,
                                        filt.constant))
    sql = "SELECT * FROM " + from_clause
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql


@given(
    seed=st.integers(0, 10_000),
    dims=st.integers(2, 5),
    shape=st.sampled_from(SHAPES),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_structure(seed, dims, shape):
    original = random_query(seed, dims=dims, shape=shape)
    sql = query_to_sql(original)
    parsed = parse_query(sql, original.catalog, name="roundtrip")

    assert set(parsed.tables) == set(original.tables)
    assert len(parsed.joins) == len(original.joins)
    original_edges = {
        frozenset((j.left, j.right)) for j in original.joins
    }
    parsed_edges = {
        frozenset((j.left, j.right)) for j in parsed.joins
    }
    assert parsed_edges == original_edges
    # Every join is an epp by default, matching `epps="all"`.
    assert parsed.dimensions == original.dimensions


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_roundtrip_optimises_identically(seed):
    """The parsed clone must admit the same optimal cost (the optimizer
    only sees structure, which the round trip preserves)."""
    from repro.cost.model import CostModel
    from repro.optimizer.dp import Optimizer

    original = random_query(seed, dims=2, shape="star")
    parsed = parse_query(query_to_sql(original), original.catalog)
    sels_original = {name: 1e-4 for name in original.epps}
    sels_parsed = {name: 1e-4 for name in parsed.epps}
    cost_original = Optimizer(
        original, CostModel(original)).optimize(sels_original).cost
    cost_parsed = Optimizer(
        parsed, CostModel(parsed)).optimize(sels_parsed).cost
    assert abs(cost_original - cost_parsed) <= 1e-6 * cost_original
