"""Tests for the seeded serving fault layer.

Covers the plan/injector vocabulary (:mod:`repro.serve.faults`,
:mod:`repro.ir.faults`), the protocol's framing hardening
(:class:`~repro.serve.protocol.FrameAssembler`, oversized and torn
frames), the daemon's in-process wire chaos, the chaos proxy, the
client's resilience posture, and the backend failover ladder.
"""

import socket
import threading
import time

import pytest

from repro.common.errors import BackendUnavailableError, ReproError
from repro.ir.faults import BackendFaultPlan, FaultyBackend
from repro.serve import (
    ChaosProxy,
    ChaosProxyThread,
    ERR_OVERSIZED,
    FaultInjector,
    FrameAssembler,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeFaultPlan,
    ServerThread,
    encode_message,
)
from repro.serve.faults import garbage_line


# ----------------------------------------------------------------------
# plans


class TestServeFaultPlan:
    def test_rejects_out_of_range_rates(self):
        for knob in ("drop_rate", "truncate_rate", "garbage_rate",
                     "slow_rate"):
            with pytest.raises(ValueError):
                ServeFaultPlan(**{knob: 1.5})
            with pytest.raises(ValueError):
                ServeFaultPlan(**{knob: -0.1})
        with pytest.raises(ValueError):
            ServeFaultPlan(slow_ms=-1)

    def test_parse_bare_float_is_drop_rate(self):
        plan = ServeFaultPlan.parse("0.25", seed=9)
        assert plan.drop_rate == 0.25
        assert plan.seed == 9

    def test_parse_knob_list(self):
        plan = ServeFaultPlan.parse(
            "drop=0.1,truncate=0.2,garbage=0.05,slow=0.3,slow_ms=80")
        assert plan.drop_rate == 0.1
        assert plan.truncate_rate == 0.2
        assert plan.garbage_rate == 0.05
        assert plan.slow_rate == 0.3
        assert plan.slow_ms == 80.0

    def test_parse_rejects_unknown_knob(self):
        with pytest.raises(ValueError):
            ServeFaultPlan.parse("explode=1")

    def test_is_clean(self):
        assert ServeFaultPlan().is_clean
        assert not ServeFaultPlan(drop_rate=0.1).is_clean
        assert not ServeFaultPlan(garbage_on_frames=(3,)).is_clean

    def test_schedule_is_deterministic_and_seed_sensitive(self):
        plan = ServeFaultPlan(drop_rate=0.3, garbage_rate=0.3, seed=4)
        assert plan.schedule(40) == plan.schedule(40)
        other = ServeFaultPlan(drop_rate=0.3, garbage_rate=0.3, seed=5)
        assert plan.schedule(40) != other.schedule(40)

    def test_round_trip_preserves_schedule(self):
        plan = ServeFaultPlan(drop_rate=0.2, truncate_rate=0.2,
                              garbage_rate=0.2, slow_rate=0.2,
                              slow_ms=10.0, seed=7,
                              garbage_on_frames=(2, 5))
        clone = ServeFaultPlan.from_dict(plan.to_dict())
        assert clone.schedule(60) == plan.schedule(60)

    def test_forced_frames_beat_the_rates(self):
        plan = ServeFaultPlan(truncate_on_frames=(3,))
        schedule = plan.schedule(4)
        assert [d["fault"] for d in schedule] == [None, None,
                                                  "truncate", None]
        assert 0.0 < schedule[2]["keep_fraction"] < 1.0

    def test_first_fault_wins(self):
        plan = ServeFaultPlan(drop_on_frames=(1,),
                              garbage_on_frames=(1,))
        assert plan.fault_at(1)["fault"] == "drop"

    def test_garbage_lines_are_newline_free(self):
        plan = ServeFaultPlan(garbage_rate=1.0, seed=11)
        for decision in plan.schedule(50):
            line = garbage_line(decision)
            assert line.endswith(b"\n")
            assert b"\n" not in line[:-1]

    def test_slow_delay_within_bounds(self):
        plan = ServeFaultPlan(slow_rate=1.0, slow_ms=40.0, seed=2)
        for decision in plan.schedule(30):
            assert 10.0 <= decision["delay_ms"] <= 40.0

    def test_describe(self):
        assert ServeFaultPlan().describe() == "clean"
        text = ServeFaultPlan(drop_rate=0.1,
                              slow_on_frames=(1,)).describe()
        assert "drop=0.1" in text and "forced=1" in text


class TestFaultInjector:
    def test_counts_follow_the_schedule(self):
        plan = ServeFaultPlan(drop_on_frames=(1,),
                              garbage_on_frames=(2,))
        injector = FaultInjector(plan)
        assert injector.next_fault()["fault"] == "drop"
        assert injector.next_fault()["fault"] == "garbage"
        assert injector.next_fault()["fault"] is None
        snap = injector.snapshot()
        assert snap["injected"] == {"frames": 3, "drop": 1,
                                    "truncate": 0, "garbage": 1,
                                    "slow": 0}

    def test_thread_safe_ordinals(self):
        injector = FaultInjector(ServeFaultPlan(drop_rate=0.5, seed=0))
        seen = []

        def draw():
            for _ in range(200):
                seen.append(injector.next_fault()["frame"])

        threads = [threading.Thread(target=draw) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(1, 801))


class TestBackendFaultPlan:
    def test_parse_forms(self):
        assert BackendFaultPlan.parse("0.3").fail_rate == 0.3
        assert BackendFaultPlan.parse("fail=0.4").fail_rate == 0.4
        with pytest.raises(ValueError):
            BackendFaultPlan.parse("explode=1")

    def test_round_trip_and_determinism(self):
        plan = BackendFaultPlan(fail_rate=0.5, seed=3,
                                fail_on_calls=(7,))
        clone = BackendFaultPlan.from_dict(plan.to_dict())
        assert clone.schedule(40) == plan.schedule(40)
        assert plan.fault_at(7)["fault"] == "unavailable"

    def test_is_clean(self):
        assert BackendFaultPlan().is_clean
        assert not BackendFaultPlan(fail_rate=0.01).is_clean
        assert not BackendFaultPlan(fail_on_calls=(1,)).is_clean


class _InnerBackend:
    backend_name = "sqlite"

    def __init__(self):
        self.ran = 0

    def run(self, plan, budget=None, spill_node_id=None,
            keep_rows=False):
        self.ran += 1
        return "rows-%d" % self.ran

    def true_selectivity(self):
        return 0.5


class TestFaultyBackend:
    def test_clean_plan_delegates_untouched(self):
        inner = _InnerBackend()
        backend = FaultyBackend(inner)
        assert backend.run(None) == "rows-1"
        assert backend.run(None) == "rows-2"
        assert backend.backend_name == "sqlite"
        assert backend.true_selectivity() == 0.5

    def test_forced_outage_names_the_backend(self):
        backend = FaultyBackend(_InnerBackend(),
                                BackendFaultPlan(fail_on_calls=(2,)))
        assert backend.run(None) == "rows-1"
        with pytest.raises(BackendUnavailableError) as exc:
            backend.run(None)
        assert exc.value.backend == "sqlite"
        # Only the scheduled call fails; service resumes after.
        assert backend.run(None) == "rows-2"

    def test_total_outage(self):
        backend = FaultyBackend(_InnerBackend(),
                                BackendFaultPlan(fail_rate=1.0))
        for _ in range(3):
            with pytest.raises(BackendUnavailableError):
                backend.run(None)
        assert backend.inner.ran == 0


# ----------------------------------------------------------------------
# framing


class TestFrameAssembler:
    def test_single_frame(self):
        assembler = FrameAssembler(64)
        assert assembler.feed(b'{"op":"health"}\n') == [
            ("frame", b'{"op":"health"}\n')]
        assert not assembler.pending

    def test_frame_split_across_chunks(self):
        assembler = FrameAssembler(64)
        assert assembler.feed(b'{"op":') == []
        assert assembler.pending
        assert assembler.feed(b'"health"}\n') == [
            ("frame", b'{"op":"health"}\n')]
        assert not assembler.pending

    def test_many_frames_in_one_chunk(self):
        assembler = FrameAssembler(64)
        events = assembler.feed(b"a\nb\nc\n")
        assert events == [("frame", b"a\n"), ("frame", b"b\n"),
                          ("frame", b"c\n")]

    def test_oversized_line_in_one_chunk(self):
        assembler = FrameAssembler(8)
        events = assembler.feed(b"x" * 20 + b"\nok\n")
        assert events == [("oversized", 21), ("frame", b"ok\n")]

    def test_oversized_line_streamed_is_bounded(self):
        assembler = FrameAssembler(8)
        total = 0
        for _ in range(100):
            assert assembler.feed(b"y" * 1000) == []
            total += 1000
            # The discard path never buffers more than the cap.
            assert len(assembler._buf) <= 8
        events = assembler.feed(b"\nnext\n")
        assert events == [("oversized", total + 1),
                          ("frame", b"next\n")]

    def test_pending_reports_torn_frame(self):
        assembler = FrameAssembler(8)
        assembler.feed(b"half")
        assert assembler.pending
        assembler.feed(b"y" * 100)  # now oversized and discarding
        assert assembler.pending

    def test_rejects_tiny_cap(self):
        with pytest.raises(ValueError):
            FrameAssembler(1)


# ----------------------------------------------------------------------
# the daemon under hostile bytes


@pytest.fixture(scope="module")
def hardened(tmp_path_factory):
    """A daemon with a small line cap, shared by the hostile-bytes
    tests (nothing here mutates artifact state)."""
    sock = str(tmp_path_factory.mktemp("faults") / "serve.sock")
    config = ServeConfig(path=sock, max_line_bytes=2048,
                         tenant_capacity=1000.0, tenant_rate=1000.0)
    server = ServerThread(config=config)
    server.start()
    try:
        yield server
    finally:
        if server._thread.is_alive():
            server.stop()


def _raw_connect(path):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(path)
    return sock


class TestHostileBytes:
    def test_oversized_line_gets_structured_error_not_teardown(
            self, hardened):
        path = hardened.daemon.config.path
        with ServeClient(path=path, max_line_bytes=1 << 20) as client:
            monster = {"op": "run", "query": "2D_Q91",
                       "tenant": "x" * 4000}
            response = client.request(monster)
            assert response["ok"] is False
            assert response["error"] == ERR_OVERSIZED
            assert "cap" in response["message"]
            # The same connection keeps serving.
            assert client.health()["result"]["ok"]

    def test_torn_frame_then_disconnect_is_harmless(self, hardened):
        path = hardened.daemon.config.path
        before = hardened.daemon.metrics.counter(
            "serve.errors.torn_frame").value
        raw = _raw_connect(path)
        raw.sendall(b'{"op":"heal')  # die mid-frame
        raw.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if hardened.daemon.metrics.counter(
                    "serve.errors.torn_frame").value > before:
                break
            time.sleep(0.01)
        assert hardened.daemon.metrics.counter(
            "serve.errors.torn_frame").value > before
        # The daemon is still serving fresh connections.
        with ServeClient(path=path) as client:
            assert client.health()["result"]["ok"]

    def test_garbage_line_does_not_poison_the_connection(
            self, hardened):
        path = hardened.daemon.config.path
        raw = _raw_connect(path)
        raw.sendall(b"\x00\xff\x17 not json \xfe\n")
        raw.sendall(encode_message({"op": "health", "id": 5}))
        recv = raw.makefile("rb")
        first = recv.readline()
        second = recv.readline()
        raw.close()
        assert b"bad-request" in first
        assert b'"id":5' in second and b'"ok":true' in second

    def test_request_split_across_many_sends_still_parses(
            self, hardened):
        path = hardened.daemon.config.path
        raw = _raw_connect(path)
        data = encode_message({"op": "health", "id": 6})
        for i in range(0, len(data), 3):
            raw.sendall(data[i:i + 3])
            time.sleep(0.001)
        line = raw.makefile("rb").readline()
        raw.close()
        assert b'"id":6' in line and b'"ok":true' in line


# ----------------------------------------------------------------------
# in-process wire chaos + client resilience


def _chaos_server(tmp_path, plan, **config_kwargs):
    sock = str(tmp_path / "serve.sock")
    config = ServeConfig(path=sock, fault_plan=plan,
                         tenant_capacity=1000.0, tenant_rate=1000.0,
                         **config_kwargs)
    return ServerThread(config=config)


class TestInjectedReplyFaults:
    @pytest.mark.parametrize("knob", ["drop_on_frames",
                                      "truncate_on_frames",
                                      "garbage_on_frames"])
    def test_client_rides_out_a_faulted_reply(self, tmp_path, knob):
        plan = ServeFaultPlan(**{knob: (1,)})
        server = _chaos_server(tmp_path, plan)
        server.start()
        try:
            with ServeClient(path=server.daemon.config.path,
                             retries=4) as client:
                response = client.health()
                assert response["result"]["ok"]
                assert client.last_attempts >= 2
            stats_fault = server.daemon._fault_injector.snapshot()
            assert sum(v for k, v in stats_fault["injected"].items()
                       if k != "frames") == 1
        finally:
            server.stop()

    def test_slow_reply_arrives_late_but_intact(self, tmp_path):
        plan = ServeFaultPlan(slow_on_frames=(1,), slow_ms=300.0)
        server = _chaos_server(tmp_path, plan)
        server.start()
        try:
            with ServeClient(path=server.daemon.config.path) as client:
                t0 = time.monotonic()
                assert client.health()["result"]["ok"]
                assert time.monotonic() - t0 >= 0.05
        finally:
            server.stop()

    def test_stats_surface_the_fault_plan(self, tmp_path):
        plan = ServeFaultPlan(garbage_on_frames=(99,), seed=6)
        server = _chaos_server(tmp_path, plan)
        server.start()
        try:
            with ServeClient(path=server.daemon.config.path) as client:
                client.health()  # one reply through the injector
                faults = client.stats()["faults"]
            assert faults["seed"] == 6
            assert faults["plan"] == "forced=1"
            assert faults["injected"]["frames"] >= 1
        finally:
            server.stop()

    def test_clean_plan_installs_no_injector(self, tmp_path):
        server = _chaos_server(tmp_path, ServeFaultPlan())
        server.start()
        try:
            assert server.daemon._fault_injector is None
            with ServeClient(path=server.daemon.config.path) as client:
                assert client.stats()["faults"] is None
        finally:
            server.stop()


class TestClientResilience:
    def test_oversized_request_refused_locally(self, tmp_path):
        server = _chaos_server(tmp_path, None)
        server.start()
        try:
            with ServeClient(path=server.daemon.config.path,
                             max_line_bytes=256) as client:
                with pytest.raises(ProtocolError):
                    client.request({"op": "run", "query": "2D_Q91",
                                    "tenant": "y" * 1000})
        finally:
            server.stop()

    def test_retry_reuses_the_request_id(self, tmp_path):
        plan = ServeFaultPlan(drop_on_frames=(1,))
        server = _chaos_server(tmp_path, plan)
        server.start()
        try:
            with ServeClient(path=server.daemon.config.path,
                             retries=4, raise_errors=False) as client:
                response = client.call({"op": "health",
                                        "id": "stable-7"})
            assert response["ok"] and response["id"] == "stable-7"
        finally:
            server.stop()

    def test_hedged_request_wins_despite_a_dropped_first_reply(
            self, tmp_path):
        # Frame 1 (the first attempt's reply) is dropped; the hedge
        # fires on a second connection and answers.
        plan = ServeFaultPlan(drop_on_frames=(1,))
        server = _chaos_server(tmp_path, plan)
        server.start()
        try:
            with ServeClient(path=server.daemon.config.path,
                             retries=3, hedge_ms=100.0) as client:
                assert client.health()["result"]["ok"]
        finally:
            server.stop()

    def test_retries_exhausted_raises_the_transport_failure(
            self, tmp_path):
        plan = ServeFaultPlan(drop_rate=1.0)
        server = _chaos_server(tmp_path, plan)
        server.start()
        try:
            with ServeClient(path=server.daemon.config.path,
                             retries=2, raise_errors=False) as client:
                with pytest.raises((ReproError, OSError)):
                    client.call({"op": "health"})
                assert client.last_attempts == 3
        finally:
            server.stop()


# ----------------------------------------------------------------------
# chaos proxy


class TestChaosProxy:
    def test_clean_proxy_is_transparent(self, tmp_path):
        server = _chaos_server(tmp_path, None)
        server.start()
        proxy = ChaosProxy(ServeFaultPlan(),
                           listen_path=str(tmp_path / "proxy.sock"),
                           upstream_path=server.daemon.config.path)
        try:
            with ChaosProxyThread(proxy):
                with ServeClient(path=proxy.listen_path) as client:
                    assert client.health()["result"]["ok"]
                    assert client.stats()["ok"]
            assert proxy.injector.counts["frames"] >= 4
        finally:
            server.stop()

    def test_dropped_request_frame_looks_like_a_peer_crash(
            self, tmp_path):
        server = _chaos_server(tmp_path, None)
        server.start()
        # Frame 1 is the first client->server request: dropped, both
        # halves die, the retrying client reconnects and succeeds.
        proxy = ChaosProxy(ServeFaultPlan(drop_on_frames=(1,)),
                           listen_path=str(tmp_path / "proxy.sock"),
                           upstream_path=server.daemon.config.path)
        try:
            with ChaosProxyThread(proxy):
                with ServeClient(path=proxy.listen_path,
                                 retries=4) as client:
                    assert client.health()["result"]["ok"]
                    assert client.last_attempts >= 2
            assert proxy.injector.counts["drop"] == 1
        finally:
            server.stop()

    def test_garbage_toward_the_daemon_yields_structured_errors(
            self, tmp_path):
        server = _chaos_server(tmp_path, None)
        server.start()
        proxy = ChaosProxy(ServeFaultPlan(garbage_on_frames=(1,)),
                           listen_path=str(tmp_path / "proxy.sock"),
                           upstream_path=server.daemon.config.path,
                           directions=("c2s",))
        try:
            with ChaosProxyThread(proxy):
                with ServeClient(path=proxy.listen_path,
                                 retries=4, raise_errors=False) as c:
                    # The garbage line precedes the real request; the
                    # daemon answers both (bad-request, then ok) and
                    # the id-matching client skips the former.
                    response = c.call({"op": "health", "id": 42})
            assert response["ok"] and response["id"] == 42
            bad = server.daemon.metrics.counter(
                "serve.errors.bad_request").value
            assert bad >= 1
        finally:
            server.stop()

    def test_mismatched_endpoint_kinds_are_rejected(self):
        with pytest.raises(ReproError):
            ChaosProxy(ServeFaultPlan(), listen_path="/tmp/x.sock")


# ----------------------------------------------------------------------
# backend failover ladder


@pytest.fixture(scope="module")
def failover_server(tmp_path_factory):
    """A daemon with a declarative row store, for row-backed specs."""
    tmp = tmp_path_factory.mktemp("failover")
    config = ServeConfig(path=str(tmp / "serve.sock"),
                         cache_dir=str(tmp / "cache"),
                         data_rng=0, data_rows=400,
                         tenant_capacity=1000.0, tenant_rate=1000.0)
    server = ServerThread(config=config)
    server.start()
    try:
        yield server
    finally:
        if server._thread.is_alive():
            server.stop()


class TestBackendFailover:
    RES = 4

    def _run(self, server, qa, engine, tenant="fo"):
        with ServeClient(path=server.daemon.config.path,
                         timeout=120.0) as client:
            return client.run("2D_Q91", resolution=self.RES, qa=qa,
                              engine=engine, tenant=tenant, rng=0)

    def test_unavailable_backend_fails_over_to_native(
            self, failover_server):
        response = self._run(failover_server, [0, 1],
                             "row(backend=sqlite,fail=1)")
        assert response["ok"]
        assert "backend-failover-sqlite-to-native" \
            in response["degraded_reasons"]
        result = response["result"]
        assert result["backend"] == "native"
        assert result["degraded"] is True
        assert result["sub_optimality"] >= 1.0

    def test_breaker_opens_after_threshold_and_fast_fails(
            self, failover_server):
        # Three more injected outages (distinct qa so nothing
        # coalesces) trip the backend breaker ...
        for i in range(3):
            response = self._run(failover_server,
                                 [i % self.RES, (i + 1) % self.RES],
                                 "row(backend=sqlite,fail=1)",
                                 tenant="fo-trip")
            assert response["ok"]
        board = failover_server.daemon.session.breakers
        breaker = board.breaker_for("backend:sqlite")
        assert breaker.is_open
        # ... and the next request skips the doomed attempt entirely.
        response = self._run(failover_server, [1, 3],
                             "row(backend=sqlite,fail=1)",
                             tenant="fo-trip")
        assert response["ok"]
        assert "backend-breaker-sqlite-to-native" \
            in response["degraded_reasons"]
        assert response["result"]["backend"] == "native"

    def test_stats_export_the_backend_breaker(self, failover_server):
        self._run(failover_server, [0, 2],
                  "row(backend=sqlite,fail=1)", tenant="fo-stats")
        with ServeClient(path=failover_server.daemon.config.path,
                         timeout=60.0) as client:
            breakers = client.stats()["breakers"]
        assert "backend:sqlite" in breakers

    def test_native_failover_answer_matches_a_direct_native_run(
            self, failover_server):
        faulted = self._run(failover_server, [2, 3],
                            "row(backend=sqlite,fail=1,fail_seed=5)",
                            tenant="fo-eq")
        native = self._run(failover_server, [2, 3], "row",
                           tenant="fo-eq")
        assert faulted["ok"] and native["ok"]
        assert faulted["result"]["sub_optimality"] \
            == native["result"]["sub_optimality"]
        assert faulted["result"]["total_cost"] \
            == native["result"]["total_cost"]
