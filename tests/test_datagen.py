"""Unit and property tests for synthetic row generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.datagen import (
    generate_database,
    generate_rows,
    true_filter_selectivity,
    true_join_selectivity,
)
from repro.catalog.schema import Catalog, Column, Table


@pytest.fixture(scope="module")
def small_table():
    return Table("t", 2000, [
        Column("pk", 2000),
        Column("fk", 50),
        Column("val", 100, lo=0, hi=100),
    ])


class TestGenerateRows:
    def test_shapes(self, small_table):
        data = generate_rows(small_table, rng=0)
        assert set(data) == {"pk", "fk", "val"}
        assert all(len(col) == 2000 for col in data.values())

    def test_primary_key_unique(self, small_table):
        data = generate_rows(small_table, rng=0)
        assert len(np.unique(data["pk"])) == 2000

    def test_fk_domain(self, small_table):
        data = generate_rows(small_table, rng=0)
        assert data["fk"].min() >= 1
        assert data["fk"].max() <= 50

    def test_deterministic(self, small_table):
        a = generate_rows(small_table, rng=42)
        b = generate_rows(small_table, rng=42)
        assert all(np.array_equal(a[c], b[c]) for c in a)

    def test_row_count_override(self, small_table):
        data = generate_rows(small_table, rng=0, row_count=100)
        assert len(data["fk"]) == 100

    def test_skew_concentrates_mass(self, small_table):
        uniform = generate_rows(small_table, rng=0)
        skewed = generate_rows(small_table, rng=0, skew={"fk": 2.0})
        top_uniform = np.mean(uniform["fk"] == 1)
        top_skewed = np.mean(skewed["fk"] == 1)
        assert top_skewed > 3 * top_uniform


class TestGenerateDatabase:
    def test_all_tables_present(self, small_table):
        catalog = Catalog("c", [small_table])
        db = generate_database(catalog, rng=1)
        assert set(db) == {"t"}

    def test_qualified_skew_routing(self, small_table):
        catalog = Catalog("c", [small_table])
        plain = generate_database(catalog, rng=3)
        skewed = generate_database(catalog, rng=3, skew={"t.fk": 2.0})
        assert np.mean(skewed["t"]["fk"] == 1) > np.mean(
            plain["t"]["fk"] == 1)

    def test_row_count_override(self, small_table):
        catalog = Catalog("c", [small_table])
        db = generate_database(catalog, rng=1, row_counts={"t": 10})
        assert len(db["t"]["pk"]) == 10


class TestTrueSelectivities:
    def test_join_selectivity_brute_force(self):
        rng = np.random.default_rng(0)
        left = rng.integers(1, 20, size=60)
        right = rng.integers(1, 20, size=40)
        matches = sum(1 for a in left for b in right if a == b)
        expected = matches / (60 * 40)
        assert true_join_selectivity(left, right) == pytest.approx(expected)

    @given(
        left=st.lists(st.integers(0, 8), min_size=1, max_size=40),
        right=st.lists(st.integers(0, 8), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_join_selectivity_property(self, left, right):
        left = np.array(left)
        right = np.array(right)
        matches = sum(1 for a in left for b in right if a == b)
        expected = matches / (len(left) * len(right))
        assert true_join_selectivity(left, right) == pytest.approx(expected)

    def test_join_selectivity_empty(self):
        assert true_join_selectivity(np.array([]), np.array([1])) == 0.0

    def test_filter_selectivity_ops(self):
        vals = np.array([1, 2, 3, 4, 5])
        assert true_filter_selectivity(vals, "<", 3) == pytest.approx(0.4)
        assert true_filter_selectivity(vals, "<=", 3) == pytest.approx(0.6)
        assert true_filter_selectivity(vals, ">", 3) == pytest.approx(0.4)
        assert true_filter_selectivity(vals, ">=", 3) == pytest.approx(0.6)
        assert true_filter_selectivity(vals, "=", 3) == pytest.approx(0.2)

    def test_filter_selectivity_rejects_bad_op(self):
        with pytest.raises(ValueError):
            true_filter_selectivity(np.array([1]), "!=", 1)
