"""Tests for SpillBound: execution structure and the D^2+3D guarantee."""

from collections import Counter

import pytest

from repro.algorithms.spillbound import SpillBound, spillbound_guarantee
from repro.metrics.mso import exhaustive_sweep


class TestGuaranteeFormula:
    def test_doubling_matches_theorem(self):
        for d in range(1, 8):
            assert spillbound_guarantee(d, 2.0) == pytest.approx(
                d * d + 3 * d)

    def test_paper_remark_1_8(self):
        # §4.2 remark: ratio 1.8 improves the 2D bound from 10 to 9.9.
        assert spillbound_guarantee(2, 1.8) == pytest.approx(9.9)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            spillbound_guarantee(2, 1.0)

    def test_algorithm_reports_formula(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        assert sb.mso_guarantee() == pytest.approx(10.0)


class TestExecutionStructure:
    def test_all_locations_terminate(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        for index in toy_space.grid.indices():
            result = sb.run(index)
            assert result.executions[-1].completed

    def test_final_execution_is_regular(self, toy_space, toy_contours):
        """The query answer always comes from a regular (non-spill)
        execution -- spill output is discarded."""
        sb = SpillBound(toy_space, toy_contours)
        for index in [(0, 0), (7, 3), (15, 15), (2, 14)]:
            result = sb.run(index)
            assert result.executions[-1].mode == "regular"

    def test_fresh_executions_bounded_by_d(self, toy_space, toy_contours):
        """Lemma 4.4: at most D fresh spill executions per contour."""
        sb = SpillBound(toy_space, toy_contours)
        d = toy_space.query.dimensions
        for index in toy_space.grid.indices():
            result = sb.run(index)
            fresh = Counter(
                r.contour for r in result.executions
                if r.mode == "spill" and not r.repeat
            )
            assert all(count <= d for count in fresh.values())

    def test_repeat_executions_bounded(self, toy_space_3d,
                                       toy_contours_3d):
        """Lemma 4.4: total repeats bounded by D(D-1)/2."""
        sb = SpillBound(toy_space_3d, toy_contours_3d)
        d = toy_space_3d.query.dimensions
        for index in toy_space_3d.grid.indices():
            result = sb.run(index)
            repeats = sum(
                1 for r in result.executions
                if r.mode == "spill" and r.repeat
            )
            assert repeats <= d * (d - 1) / 2

    def test_spill_budgets_equal_contour_cost(self, toy_space,
                                              toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        result = sb.run((9, 9))
        for record in result.executions:
            if record.mode == "spill":
                assert record.budget == pytest.approx(
                    toy_contours.cost(record.contour))

    def test_contours_never_revisited_downward(self, toy_space,
                                               toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        result = sb.run((11, 6))
        levels = [r.contour for r in result.executions]
        assert levels == sorted(levels)

    def test_completes_by_covering_contour(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        for index in [(0, 0), (4, 12), (15, 15), (8, 8)]:
            result = sb.run(index)
            assert result.executions[-1].contour <= \
                toy_contours.contour_of(index)

    def test_exact_learning_matches_truth(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        qa = (6, 13)
        result = sb.run(qa)
        for record in result.executions:
            if record.mode == "spill" and record.completed:
                dim = toy_space.query.epp_index(record.epp)
                assert record.learned == qa[dim]


class TestMSOBound:
    def test_toy_2d_within_10(self, toy_space, toy_contours):
        sb = SpillBound(toy_space, toy_contours)
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= 10.0 + 1e-6  # Theorem 4.2

    def test_toy_3d_within_18(self, toy_space_3d, toy_contours_3d):
        sb = SpillBound(toy_space_3d, toy_contours_3d)
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= 18.0 + 1e-6  # D^2+3D, D=3

    def test_q91_2d_within_10(self, q91_2d_space, q91_2d_contours):
        sb = SpillBound(q91_2d_space, q91_2d_contours)
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= 10.0 + 1e-6

    def test_nondoubling_ratio_bound(self, toy_space):
        from repro.ess.contours import ContourSet
        contours = ContourSet(toy_space, ratio=1.8)
        sb = SpillBound(toy_space, contours)
        sweep = exhaustive_sweep(sb)
        assert sweep.mso <= spillbound_guarantee(2, 1.8) + 1e-6

    def test_beats_planbouquet_on_average(self, q91_2d_space,
                                          q91_2d_contours):
        """The paper's headline empirical claim (Figs. 10-11)."""
        from repro.algorithms.planbouquet import PlanBouquet
        sb_sweep = exhaustive_sweep(
            SpillBound(q91_2d_space, q91_2d_contours))
        pb_sweep = exhaustive_sweep(
            PlanBouquet(q91_2d_space, q91_2d_contours))
        assert sb_sweep.aso <= pb_sweep.aso
