"""Tests for shared infrastructure: reporting, RNG, error hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    BudgetExhaustedError,
    CatalogError,
    DiscoveryError,
    ExecutionError,
    OptimizerError,
    PlanError,
    QueryError,
    ReproError,
)
from repro.common.reporting import Report, format_table
from repro.common.rng import derive_rng, make_rng


class TestErrors:
    @pytest.mark.parametrize("exc", [
        CatalogError, QueryError, OptimizerError, PlanError,
        ExecutionError, BudgetExhaustedError, DiscoveryError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_budget_error_carries_context(self):
        err = BudgetExhaustedError("boom", observed={1: 5}, spent=3.0)
        assert err.observed == {1: 5}
        assert err.spent == 3.0


class TestRng:
    def test_seed_determinism(self):
        a = make_rng(7).integers(0, 1000, 5)
        b = make_rng(7).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_derive_namespacing(self):
        parent1 = make_rng(3)
        parent2 = make_rng(3)
        child_a = derive_rng(parent1, "a")
        child_b = derive_rng(parent2, "b")
        assert not np.array_equal(
            child_a.integers(0, 10**9, 4), child_b.integers(0, 10**9, 4))


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1.5], ["long", 22.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in text
        assert "22.25" in text

    def test_title_underlined(self):
        text = format_table(["h"], [["x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="

    def test_bool_formatting(self):
        assert "True" in format_table(["b"], [[True]])

    @given(st.lists(
        st.lists(
            st.one_of(st.integers(-10**6, 10**6),
                      st.floats(-1e6, 1e6),
                      st.text(
                          alphabet=st.characters(
                              blacklist_categories=("Cs", "Cc")),
                          max_size=12,
                      )),
            min_size=2, max_size=2,
        ),
        min_size=1, max_size=6,
    ))
    @settings(max_examples=40, deadline=None)
    def test_never_crashes_and_row_count_preserved(self, rows):
        text = format_table(["a", "b"], rows)
        assert len(text.split("\n")) == 2 + len(rows)


class TestReport:
    def test_render_includes_tables(self):
        report = Report("demo")
        report.add_table("first", ["x"], [[1]])
        report.add_table("second", ["y"], [[2]])
        text = report.render()
        assert "# demo" in text
        assert "first" in text and "second" in text

    def test_str_matches_render(self):
        report = Report("demo")
        report.add_table("t", ["x"], [[1]])
        assert str(report) == report.render()
