"""End-to-end integration flows across the whole public surface."""

import pytest

import repro
from repro.metrics.analysis import RunBreakdown


class TestSqlToRobustFlow:
    """SQL text -> epp identification -> space -> discovery -> figures."""

    @pytest.fixture(scope="class")
    def flow(self, tmp_path_factory):
        catalog = repro.tpcds_catalog()
        query = repro.parse_query(
            """
            SELECT * FROM catalog_returns cr, date_dim d, customer c
            WHERE cr.cr_returned_date_sk = d.d_date_sk
              AND cr.cr_returning_customer_sk = c.c_customer_sk
              AND d.d_year = 1998
            """,
            catalog, name="flow_q", epps="none",
        )
        robust = repro.declare_epps(query, k=2)
        space = repro.ExplorationSpace(robust, resolution=10)
        space.build(mode="fast", rng=0)
        return robust, space

    def test_epps_declared(self, flow):
        robust, _space = flow
        assert robust.dimensions == 2

    def test_guarantee_by_inspection(self, flow):
        robust, _space = flow
        assert repro.spillbound_guarantee(robust.dimensions) == 10.0

    def test_all_algorithms_run(self, flow):
        _robust, space = flow
        contours = repro.ContourSet(space)
        qa = (7, 4)
        for cls in (repro.PlanBouquet, repro.SpillBound,
                    repro.AlignedBound):
            result = cls(space, contours).run(qa)
            assert result.executions[-1].completed
            assert result.sub_optimality >= 1.0 - 1e-9

    def test_breakdown_accounts_everything(self, flow):
        _robust, space = flow
        sb = repro.SpillBound(space, repro.ContourSet(space))
        result = sb.run((8, 8))
        assert RunBreakdown(result).total == pytest.approx(
            result.total_cost)

    def test_persist_and_resume(self, flow, tmp_path):
        robust, space = flow
        path = str(tmp_path / "flow.npz")
        repro.save_space(space, path)
        loaded = repro.load_space(robust, path)
        sb_a = repro.SpillBound(space, repro.ContourSet(space))
        sb_b = repro.SpillBound(loaded, repro.ContourSet(loaded))
        assert sb_a.run((5, 5)).total_cost == pytest.approx(
            sb_b.run((5, 5)).total_cost)

    def test_figures_render(self, flow):
        _robust, space = flow
        contours = repro.ContourSet(space)
        from repro.viz import render_trace_svg
        result = repro.SpillBound(space, contours).run((7, 7))
        document = render_trace_svg(space, contours, result)
        assert document.startswith("<svg")


class TestDataDrivenFlow:
    """Generated data -> measured truth -> row-backed discovery."""

    def test_vector_and_row_backends_agree_on_truth(self):
        query = repro.random_query(21, dims=2, shape="star")
        # Shrink for the executors.
        catalog = query.catalog.scaled(0.02, name="mini")
        mini = repro.Query(
            "mini_flow", catalog, query.tables, query.joins,
            query.filters, query.epps,
        )
        database = repro.generate_database(catalog, rng=5)
        space = repro.ExplorationSpace(mini, resolution=10, s_min=1e-5)
        space.build(mode="fast", rng=0)
        from repro.executor.vectorized import VectorEngine
        row_engine = repro.RowBackedEngine(space, database)
        vec_engine = repro.RowBackedEngine(
            space, database, executor_cls=VectorEngine)
        assert row_engine.qa_index == vec_engine.qa_index

    def test_discovery_on_vector_backend(self):
        query = repro.random_query(22, dims=2, shape="chain")
        catalog = query.catalog.scaled(0.02, name="mini2")
        mini = repro.Query(
            "mini_flow2", catalog, query.tables, query.joins,
            query.filters, query.epps,
        )
        database = repro.generate_database(catalog, rng=6)
        space = repro.ExplorationSpace(mini, resolution=10, s_min=1e-5)
        space.build(mode="fast", rng=0)
        from repro.executor.vectorized import VectorEngine
        engine = repro.RowBackedEngine(
            space, database, delta=1.0, executor_cls=VectorEngine)
        sb = repro.SpillBound(space, repro.ContourSet(space))
        result = sb.run(engine.qa_index, engine=engine)
        assert result.executions[-1].completed


class TestNoisyFlow:
    def test_noise_sweep_within_inflated_bound(self, q91_2d_space,
                                               q91_2d_contours):
        sb = repro.SpillBound(q91_2d_space, q91_2d_contours)
        sweep = repro.exhaustive_sweep(
            sb, sample=60, rng=4,
            engine_factory=lambda qa: repro.NoisyEngine(
                q91_2d_space, qa, delta=0.3, seed=2),
        )
        assert sweep.mso <= repro.inflated_guarantee(
            sb.mso_guarantee(), 0.3) + 1e-6
