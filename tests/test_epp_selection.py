"""Tests for automated error-prone predicate identification (§7)."""


from repro.harness.epp_selection import EppRanking, declare_epps, rank_epps
from repro.harness.workloads import workload


class TestRanking:
    def test_scores_sorted_descending(self, toy_query):
        ranking = rank_epps(toy_query)
        spreads = [s for _n, s in ranking.scores]
        assert spreads == sorted(spreads, reverse=True)

    def test_all_joins_assessed(self, toy_query):
        ranking = rank_epps(toy_query)
        assert {n for n, _s in ranking.scores} == {"j1", "j2", "j3"}

    def test_spreads_at_least_one(self, toy_query):
        ranking = rank_epps(toy_query)
        assert all(s >= 1.0 for _n, s in ranking.scores)

    def test_top_and_select(self):
        ranking = EppRanking([("a", 100.0), ("b", 5.0), ("c", 1.1)])
        assert ranking.top(2) == ["a", "b"]
        assert ranking.select(min_spread=4.0) == ["a", "b"]
        assert ranking.select(min_spread=1000.0) == []

    def test_explicit_candidates(self, toy_query):
        ranking = rank_epps(toy_query, candidates=["j1"])
        assert [n for n, _s in ranking.scores] == ["j1"]

    def test_big_fact_join_dominates(self):
        """Joins touching the fact table move orders of magnitude more
        cost than dimension-to-dimension joins."""
        ranking = rank_epps(workload("3D_Q15"))
        assert ranking.scores[0][0] in ("cs_c", "cs_d")


class TestDeclareEpps:
    def test_top_k(self, toy_query):
        auto = declare_epps(toy_query, k=2)
        assert auto.dimensions == 2
        assert auto.name.startswith("2D_")
        assert auto.name.endswith("_auto")

    def test_threshold_fallback_to_one(self, toy_query):
        auto = declare_epps(toy_query, min_spread=1e12)
        assert auto.dimensions == 1

    def test_strips_existing_prefix(self):
        auto = declare_epps(workload("3D_Q15"), k=2)
        assert auto.name == "2D_Q15_auto"

    def test_original_untouched(self, toy_query):
        before = toy_query.epps
        declare_epps(toy_query, k=1)
        assert toy_query.epps == before


class TestEndToEnd:
    def test_auto_query_runs_spillbound(self, toy_query):
        """An automatically declared epp set feeds straight into the
        discovery pipeline."""
        from repro.algorithms.spillbound import SpillBound
        from repro.ess.contours import ContourSet
        from repro.ess.space import ExplorationSpace
        auto = declare_epps(toy_query, k=2)
        space = ExplorationSpace(auto, resolution=8, s_min=1e-5)
        space.build(mode="fast", rng=0)
        sb = SpillBound(space, ContourSet(space))
        qa = tuple(r // 2 for r in space.grid.shape)
        result = sb.run(qa)
        assert result.sub_optimality <= sb.mso_guarantee() + 1e-6
