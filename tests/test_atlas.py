"""Atlas: byte-determinism, parallel identity, reuse, gate, CLI.

The contracts under test (DESIGN.md §14):

* the canonical summary is a pure function of the config -- two runs at
  the same seed serialise byte-identically, serial or ``--workers N``;
* the journal makes an atlas resumable with bit-identical replays;
* a two-resolution atlas shares plan-bank work across resolutions;
* the baseline gate fails (naming suite, query and metric) on injected
  regressions and passes on a pristine baseline.
"""

import json
import os

import pytest

from repro.atlas import (
    AtlasConfig,
    build_summary,
    canonical_json,
    compare_summaries,
    format_violations,
    load_summary,
    parse_tolerances,
    render_atlas_html,
    run_atlas,
    write_summary,
)
from repro.atlas.driver import collect_exhibits
from repro.cli import main
from repro.common.errors import DiscoveryError

#: Small but real: two suites, a synthetic regime, both algorithms.
CONFIG = dict(queries=("2D_EQ", "2D_Q91"),
              regimes=("baseline", "tail-blowup"),
              algorithms=("spillbound",), resolutions=(4,))


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out


class TestConfig:
    def test_round_trips_through_dict(self):
        config = AtlasConfig(**CONFIG)
        clone = AtlasConfig.from_dict(config.to_dict())
        assert clone.to_dict() == config.to_dict()

    def test_overrides_replace_fields(self):
        config = AtlasConfig(**CONFIG)
        clone = AtlasConfig.from_dict(config.to_dict(), ratio=4.0,
                                      seed=None)
        assert clone.ratio == 4.0
        assert clone.seed == config.seed

    def test_unknown_field_refused(self):
        with pytest.raises(DiscoveryError):
            AtlasConfig.from_dict({"queries": ["2D_EQ"], "bogus": 1})

    def test_unknown_regime_refused(self):
        with pytest.raises(DiscoveryError):
            AtlasConfig(regimes=("baseline", "benign"))

    def test_qualified_names(self):
        config = AtlasConfig(**dict(CONFIG, seed=3))
        assert config.qualified("2D_EQ", "baseline") == "2D_EQ"
        assert config.qualified("2D_EQ", "tail-blowup") == \
            "2D_EQ@tail-blowup#3"
        assert AtlasConfig(**CONFIG).qualified(
            "2D_EQ", "tail-blowup") == "2D_EQ@tail-blowup"


class TestSummary:
    def test_summary_shape_and_metrics(self):
        result = run_atlas(AtlasConfig(**CONFIG))
        summary = build_summary(result)
        assert summary["schema"].startswith("repro-atlas/")
        assert len(summary["units"]) == 4
        unit = summary["units"]["res4/2D_Q91@tail-blowup/spillbound"]
        assert unit["suite"] == "tpcds"
        assert unit["regime"] == "tail-blowup"
        assert unit["skeleton"] == "2D_Q91"
        assert unit["locations"] == 16
        assert unit["mso"] >= unit["regret_p99"] + 1.0 >= \
            unit["regret_p90"] + 1.0 >= unit["regret_p50"] + 1.0
        # SpillBound's D^2+3D guarantee must hold empirically.
        assert unit["guarantee"] == pytest.approx(10.0)
        assert unit["bound_slack"] == \
            pytest.approx(unit["guarantee"] - unit["mso"])
        assert set(summary["suites"]) == {"tpch", "tpcds"}
        assert summary["totals"]["units"] == 4

    def test_same_seed_byte_identical(self):
        config = AtlasConfig(**CONFIG)
        one = canonical_json(build_summary(run_atlas(config)))
        two = canonical_json(build_summary(run_atlas(config)))
        assert one == two

    def test_different_seed_differs(self):
        one = canonical_json(build_summary(
            run_atlas(AtlasConfig(**CONFIG))))
        two = canonical_json(build_summary(
            run_atlas(AtlasConfig(**dict(CONFIG, seed=9)))))
        assert one != two

    def test_parallel_matches_serial_byte_for_byte(self):
        config = AtlasConfig(**CONFIG)
        serial = canonical_json(build_summary(run_atlas(config)))
        parallel = canonical_json(build_summary(
            run_atlas(config, workers=4)))
        assert serial == parallel

    def test_summary_round_trips_canonically(self, tmp_path):
        summary = build_summary(run_atlas(AtlasConfig(**CONFIG)))
        path = str(tmp_path / "summary.json")
        write_summary(path, summary)
        loaded = load_summary(path)
        assert canonical_json(loaded) == canonical_json(summary)

    def test_load_rejects_non_summary(self, tmp_path):
        path = str(tmp_path / "x.json")
        with open(path, "w") as handle:
            json.dump({"nope": 1}, handle)
        with pytest.raises(ValueError):
            load_summary(path)


class TestReuseAndJournal:
    def test_two_resolution_run_hits_plan_bank(self):
        # AlignedBound's constrained DP probes land on grid corners
        # that coincide bitwise across resolutions, so the second
        # resolution must be served partly from the bank (PR 9).
        config = AtlasConfig(queries=("2D_EQ",), regimes=("baseline",),
                             algorithms=("spillbound", "alignedbound"),
                             resolutions=(4, 7))
        result = run_atlas(config)
        reuse = result.stats()["reuse"]
        assert reuse["dp_result_hits"] > 0
        assert reuse["space_builds"] == 2

    def test_journal_resume_replays_bit_identically(self, tmp_path):
        config = AtlasConfig(**CONFIG)
        journal = str(tmp_path / "journal")
        first = run_atlas(config, journal_dir=journal)
        assert first.stats()["journal"]["executed"] == 4
        second = run_atlas(config, journal_dir=journal, resume=True)
        assert second.stats()["journal"]["replayed"] == 4
        assert second.stats()["journal"]["executed"] == 0
        assert canonical_json(build_summary(second)) == \
            canonical_json(build_summary(first))

    def test_stats_stay_out_of_summary(self):
        result = run_atlas(AtlasConfig(**CONFIG))
        text = canonical_json(build_summary(result))
        for volatile in ("space_memory_hits", "surface_hits",
                         "replayed", "journal"):
            assert volatile not in text


class TestGate:
    def _summary(self, **overrides):
        return build_summary(run_atlas(
            AtlasConfig(**dict(CONFIG, **overrides))))

    def test_identical_summaries_pass(self):
        summary = self._summary()
        violations, notes = compare_summaries(summary, summary)
        assert violations == []
        assert notes == []

    def test_doctored_mso_regression_fails_with_names(self):
        baseline = self._summary()
        current = json.loads(canonical_json(baseline))
        key = "res4/2D_Q91@tail-blowup/spillbound"
        current["units"][key]["mso"] *= 1.5
        violations, _ = compare_summaries(baseline, current)
        assert len(violations) == 1
        violation = violations[0]
        assert violation["suite"] == "tpcds"
        assert violation["query"] == "2D_Q91@tail-blowup"
        assert violation["metric"] == "mso"
        line = format_violations(violations)[0]
        assert "suite=tpcds" in line
        assert "query=2D_Q91@tail-blowup" in line
        assert "metric=mso" in line

    def test_improvement_never_fails(self):
        baseline = self._summary()
        current = json.loads(canonical_json(baseline))
        for unit in current["units"].values():
            unit["mso"] *= 0.5
            unit["aso"] *= 0.5
        violations, _ = compare_summaries(baseline, current)
        assert violations == []

    def test_within_tolerance_passes(self):
        baseline = self._summary()
        current = json.loads(canonical_json(baseline))
        key = next(iter(current["units"]))
        current["units"][key]["mso"] *= 1.04  # below the 5% default
        violations, _ = compare_summaries(baseline, current)
        assert violations == []

    def test_shrinking_bound_slack_fails(self):
        baseline = self._summary()
        current = json.loads(canonical_json(baseline))
        key = "res4/2D_EQ/spillbound"
        current["units"][key]["bound_slack"] -= 2.0
        violations, _ = compare_summaries(baseline, current)
        assert [v["metric"] for v in violations] == ["bound_slack"]

    def test_new_degraded_location_fails_by_default(self):
        baseline = self._summary()
        current = json.loads(canonical_json(baseline))
        key = "res4/2D_EQ/spillbound"
        current["units"][key]["degraded"] += 1
        violations, _ = compare_summaries(baseline, current)
        assert [v["metric"] for v in violations] == ["degraded"]

    def test_missing_unit_is_a_regression(self):
        baseline = self._summary()
        current = json.loads(canonical_json(baseline))
        key = sorted(current["units"])[0]
        del current["units"][key]
        violations, _ = compare_summaries(baseline, current)
        assert any(v["metric"] == "missing" and v["unit"] == key
                   for v in violations)
        assert "missing" in format_violations(violations)[0]

    def test_new_units_and_config_drift_are_notes(self):
        baseline = self._summary()
        current = json.loads(canonical_json(baseline))
        current["units"]["res4/NEW/unit"] = \
            json.loads(canonical_json(
                current["units"]["res4/2D_EQ/spillbound"]))
        current["config"]["ratio"] = 4.0
        violations, notes = compare_summaries(baseline, current)
        assert violations == []
        assert any("new unit" in note for note in notes)
        assert any("config drift" in note for note in notes)

    def test_parse_tolerances(self):
        tolerances = parse_tolerances(["mso=0.2", "degraded=2"])
        assert tolerances["mso"] == 0.2
        assert tolerances["degraded"] == 2.0
        assert tolerances["aso"] == 0.05
        with pytest.raises(DiscoveryError):
            parse_tolerances(["nonsense=1"])
        with pytest.raises(DiscoveryError):
            parse_tolerances(["mso=abc"])


class TestReport:
    def test_html_is_self_contained(self):
        result = collect_exhibits(run_atlas(AtlasConfig(**CONFIG)),
                                  limit=2)
        summary = build_summary(result)
        html = render_atlas_html(summary, result=result,
                                 stats=result.stats())
        assert html.startswith("<!DOCTYPE html>")
        assert "<h1>Robustness atlas</h1>" in html
        assert "MSO heatmaps" in html
        assert html.count("<svg") >= 3  # heatmaps + exhibit figures
        assert "Worst-location exhibits" in html
        assert "res4/2D_Q91@tail-blowup/spillbound" in html
        assert "Reuse (volatile)" in html
        # No external fetches: a static report must carry everything.
        assert "http://" not in html and "https://" not in html \
            or "xmlns" in html  # the SVG namespace is declarative only

    def test_exhibits_cap_and_payload(self):
        result = collect_exhibits(run_atlas(AtlasConfig(**CONFIG)),
                                  limit=1)
        exhibits = [u for u in result.units if u.exhibit is not None]
        assert len(exhibits) == 1
        exhibit = exhibits[0].exhibit
        assert exhibit["result"].sub_optimality >= 1.0
        assert any(r.get("type") == "run-end"
                   for r in exhibit["records"])


ATLAS_FLAGS = ["--queries", "2D_EQ,2D_Q91",
               "--regimes", "baseline,tail-blowup",
               "--algorithms", "spillbound", "--resolutions", "4"]


class TestCLI:
    def test_run_writes_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "atlas")
        code, out = run_cli(["atlas", "run", "--out", out_dir]
                            + ATLAS_FLAGS, capsys)
        assert code == 0
        assert os.path.exists(os.path.join(out_dir,
                                           "atlas_summary.json"))
        assert os.path.exists(os.path.join(out_dir, "atlas_stats.json"))
        assert os.path.exists(os.path.join(out_dir,
                                           "atlas_report.html"))
        assert "atlas: 4 units" in out
        assert "reuse:" in out

    def test_bless_then_check_passes(self, tmp_path, capsys):
        baseline = str(tmp_path / "base.json")
        code, out = run_cli(["atlas", "bless", "--baseline", baseline]
                            + ATLAS_FLAGS, capsys)
        assert code == 0
        code, out = run_cli(["atlas", "check", "--baseline", baseline],
                            capsys)
        assert code == 0
        assert "passed" in out

    def test_bless_is_byte_deterministic(self, tmp_path, capsys):
        one = str(tmp_path / "one.json")
        two = str(tmp_path / "two.json")
        assert run_cli(["atlas", "bless", "--baseline", one]
                       + ATLAS_FLAGS, capsys)[0] == 0
        assert run_cli(["atlas", "bless", "--baseline", two,
                        "--workers", "4"] + ATLAS_FLAGS, capsys)[0] == 0
        with open(one, "rb") as a, open(two, "rb") as b:
            assert a.read() == b.read()

    def test_injected_regression_fails_check(self, tmp_path, capsys):
        # End-to-end injection: a coarser contour ladder (--ratio 4)
        # genuinely degrades discovery, so the re-run must regress
        # against the blessed ratio-2 baseline and the gate must name
        # the failing suite, query and metric.
        baseline = str(tmp_path / "base.json")
        assert run_cli(["atlas", "bless", "--baseline", baseline]
                       + ATLAS_FLAGS, capsys)[0] == 0
        code, out = run_cli(["atlas", "check", "--baseline", baseline,
                             "--ratio", "4.0"], capsys)
        assert code == 1
        assert "REGRESSION" in out
        assert "suite=" in out and "query=" in out and "metric=" in out
        assert "config drift" in out
        assert "FAILED" in out

    def test_tolerance_override_can_absorb_injection(self, tmp_path,
                                                     capsys):
        baseline = str(tmp_path / "base.json")
        assert run_cli(["atlas", "bless", "--baseline", baseline]
                       + ATLAS_FLAGS, capsys)[0] == 0
        code, out = run_cli(
            ["atlas", "check", "--baseline", baseline, "--ratio", "4.0",
             "--tolerance", "mso=10", "--tolerance", "aso=10",
             "--tolerance", "regret_p50=10",
             "--tolerance", "regret_p90=10",
             "--tolerance", "regret_p99=10",
             "--tolerance", "bound_slack=10"], capsys)
        assert code == 0

    def test_run_resume_replays(self, tmp_path, capsys):
        out_dir = str(tmp_path / "atlas")
        assert run_cli(["atlas", "run", "--out", out_dir, "--no-html"]
                       + ATLAS_FLAGS, capsys)[0] == 0
        code, out = run_cli(["atlas", "run", "--out", out_dir,
                             "--resume", "--no-html"] + ATLAS_FLAGS,
                            capsys)
        assert code == 0
        assert "4 replayed, 0 executed" in out

    def test_missing_baseline_errors(self, tmp_path, capsys):
        with pytest.raises(FileNotFoundError):
            run_cli(["atlas", "check", "--baseline",
                     str(tmp_path / "nope.json")], capsys)


class TestSweepReuseOutput:
    def test_sweep_prints_reuse_counters(self, capsys):
        code, out = run_cli(
            ["sweep", "2D_Q91", "--resolution", "5",
             "--algorithms", "spillbound"], capsys)
        assert code == 0
        assert "Artifact reuse" in out
        assert "space_builds" in out

    def test_durable_sweep_prints_reuse_counters(self, tmp_path,
                                                 capsys):
        code, out = run_cli(
            ["sweep", "2D_Q91", "--resolution", "5",
             "--algorithms", "spillbound",
             "--journal", str(tmp_path / "journal")], capsys)
        assert code == 0
        assert "Artifact reuse" in out
        assert "dp_result_hits" in out
