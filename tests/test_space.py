"""Tests for the exploration space: POSP construction and the OCS."""

import numpy as np
import pytest

from repro.common.errors import OptimizerError
from repro.ess.space import ExplorationSpace, default_resolution


class TestExactBuild:
    def test_every_location_has_optimal_plan(self, toy_space):
        for index in toy_space.grid.indices():
            plan = toy_space.optimal_plan(index)
            assert plan.cost[index] == pytest.approx(
                toy_space.optimal_cost(index))

    def test_opt_cost_matches_dp(self, toy_space):
        # Spot-check a diagonal of locations against fresh DP calls.
        n = toy_space.grid.shape[0]
        for i in range(0, n, 3):
            index = (i, i)
            result = toy_space.optimize_at(index)
            assert toy_space.optimal_cost(index) == pytest.approx(
                result.cost, rel=1e-9)

    def test_opt_cost_is_lower_envelope(self, toy_space):
        for info in toy_space.plans:
            assert np.all(info.cost >= toy_space.opt_cost * (1 - 1e-12))

    def test_pcm_of_optimal_surface(self, toy_space):
        cost = toy_space.opt_cost
        assert np.all(np.diff(cost, axis=0) > 0)
        assert np.all(np.diff(cost, axis=1) > 0)

    def test_extremes(self, toy_space):
        assert toy_space.c_min == toy_space.optimal_cost(
            toy_space.grid.origin)
        assert toy_space.c_max == toy_space.optimal_cost(
            toy_space.grid.terminus)
        assert toy_space.c_max > toy_space.c_min

    def test_posp_size_counts_distinct(self, toy_space):
        assert 1 < toy_space.posp_size() <= len(toy_space.plans)


class TestFastBuild:
    def test_fast_matches_exact(self, toy_query):
        exact = ExplorationSpace(toy_query, resolution=12, s_min=1e-5)
        exact.build(mode="exact")
        fast = ExplorationSpace(toy_query, resolution=12, s_min=1e-5)
        fast.build(mode="fast", rng=3)
        assert np.allclose(fast.opt_cost, exact.opt_cost, rtol=1e-9)

    def test_unknown_mode_rejected(self, toy_query):
        space = ExplorationSpace(toy_query, resolution=4, s_min=1e-5)
        with pytest.raises(OptimizerError):
            space.build(mode="bogus")


class TestPlanRegistry:
    def test_register_deduplicates(self, toy_space):
        count = len(toy_space.plans)
        info = toy_space.register_plan(toy_space.plans[0].tree)
        assert info.id == toy_space.plans[0].id
        assert len(toy_space.plans) == count

    def test_spill_order_contains_epps_only(self, toy_space):
        for info in toy_space.plans:
            for name, _node, subtree in info.spill_order:
                assert name in toy_space.query.epps
                assert subtree <= set(toy_space.query.epps)

    def test_spill_target_respects_remaining(self, toy_space):
        info = toy_space.plans[0]
        full = info.spill_target(set(toy_space.query.epps))
        assert full is not None
        assert info.spill_target(set()) is None

    def test_assignment_at(self, toy_space):
        a = toy_space.assignment_at((3, 5))
        assert a["j1"] == pytest.approx(toy_space.grid.values[0][3])
        assert a["j2"] == pytest.approx(toy_space.grid.values[1][5])


class TestMisc:
    def test_requires_epps(self, toy_catalog):
        from repro.query.query import Query, make_join
        query = Query(
            "noepp", toy_catalog, ["fact", "dim1"],
            [make_join("j1", "fact.f_dim1", "dim1.d1_id")],
            epps=(),
        )
        with pytest.raises(OptimizerError):
            ExplorationSpace(query, resolution=4)

    def test_default_resolution_decreasing(self):
        values = [default_resolution(d) for d in range(1, 7)]
        assert values == sorted(values, reverse=True)
        assert default_resolution(9) >= 2

    def test_repr_mentions_build_state(self, toy_query):
        space = ExplorationSpace(toy_query, resolution=4, s_min=1e-5)
        assert "unbuilt" in repr(space)
        space.build(mode="fast", sample=8)
        assert "built" in repr(space)
