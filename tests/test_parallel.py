"""Tests for parallel exact space construction."""

import numpy as np
import pytest

from repro.common.errors import DiscoveryError
from repro.ess.parallel import parallel_exact_build
from repro.ess.space import ExplorationSpace


class TestParallelBuild:
    def test_identical_to_serial(self, toy_query):
        serial = ExplorationSpace(toy_query, resolution=10, s_min=1e-5)
        serial.build(mode="exact")
        parallel = parallel_exact_build(
            ExplorationSpace(toy_query, resolution=10, s_min=1e-5),
            workers=2, chunk_size=16,
        )
        assert np.array_equal(parallel.plan_at, serial.plan_at)
        assert np.allclose(parallel.opt_cost, serial.opt_cost)
        def signatures(s):
            return {i.tree.signature() for i in s.plans}
        assert signatures(parallel) == signatures(serial)

    def test_single_worker_falls_back(self, toy_query):
        space = parallel_exact_build(
            ExplorationSpace(toy_query, resolution=6, s_min=1e-5),
            workers=1,
        )
        assert space.built

    def test_rejects_built_space(self, toy_space):
        with pytest.raises(DiscoveryError):
            parallel_exact_build(toy_space, workers=2)
