"""Public API surface tests: everything advertised is importable/usable."""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_path(self):
        """The docstring's quickstart must actually work."""
        query = repro.workload("2D_Q91")
        space = repro.build_space(query, resolution=8)
        sb = repro.SpillBound(space)
        assert sb.mso_guarantee() == 10.0
        sweep = repro.exhaustive_sweep(sb, sample=9, rng=0)
        assert sweep.mso <= 10.0 + 1e-6

    def test_guarantee_by_query_inspection(self):
        """The paper's headline property: the bound is known from the
        query alone (its epp count), before any preprocessing."""
        for d in (2, 4, 6):
            assert repro.spillbound_guarantee(d) == d * d + 3 * d
